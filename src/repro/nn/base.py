"""Shared machinery for graph convolution layers.

Every conv in :mod:`repro.nn` follows the same calling convention::

    out = conv(x, edge_index, num_nodes, edge_weight=None)

* ``x`` — ``(N, F)`` node-feature :class:`~repro.tensor.Tensor`.
* ``edge_index`` — ``(2, E)`` numpy array of (source, destination) pairs.
* ``edge_weight`` — optional ``(E,)`` :class:`Tensor` of differentiable
  per-edge multipliers.  This is how the SES structure mask ``M̂_s ⊙ A``
  (paper Eqs. 8/10) enters the aggregation: the structural normalisation
  coefficients stay constant while the mask weights receive gradients.

Layers cache per-``edge_index`` constants (self-looped indices, degree
normalisation, CSR segment layouts) keyed on the array's content, since the
topology is fixed throughout a training run.  The cached
:class:`EdgeLayouts` pair — one destination-sorted layout for the scatter
side, one source-sorted layout for the gather adjoints — is threaded into
every ``segment_*``/``gather_rows`` call so the hot path never re-sorts or
re-hashes the edge list (see docs/PERF.md).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

import numpy as np

from ..graph.normalize import gcn_edge_norm
from ..tensor import (
    CSRSegmentLayout,
    Module,
    Tensor,
    as_tensor,
    functional as F,
    gather_rows,
    segment_sum,
)


def add_self_loops(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Append the ``N`` self-loop edges to ``edge_index``."""
    loops = np.arange(num_nodes, dtype=np.int64)
    return np.hstack([edge_index, np.vstack([loops, loops])])


class EdgeLayouts(NamedTuple):
    """The two CSR layouts one edge list needs for message passing.

    ``dst`` sorts edges by destination (forward scatter / softmax segments);
    ``src`` sorts by source (the adjoint of every source-side gather).
    """

    src: CSRSegmentLayout
    dst: CSRSegmentLayout


def edge_layouts(edge_index: np.ndarray, num_nodes: int) -> EdgeLayouts:
    """Build the src/dst :class:`CSRSegmentLayout` pair for ``edge_index``."""
    return EdgeLayouts(
        src=CSRSegmentLayout(edge_index[0], num_nodes),
        dst=CSRSegmentLayout(edge_index[1], num_nodes),
    )


def looped_constants(
    edge_index: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, EdgeLayouts]:
    """Self-looped edge index plus its cached CSR layout pair."""
    full_index = add_self_loops(edge_index, num_nodes)
    return full_index, edge_layouts(full_index, num_nodes)


def extend_edge_weight(edge_weight: Optional[Tensor], num_nodes: int) -> Optional[Tensor]:
    """Extend differentiable edge weights with unit self-loop weights."""
    if edge_weight is None:
        return None
    ones = as_tensor(np.ones(num_nodes))
    return F.concatenate([edge_weight, ones], axis=0)


def extend_edge_weight_scaled(
    edge_weight: Optional[Tensor],
    edge_index: np.ndarray,
    num_nodes: int,
    layout: Optional[CSRSegmentLayout] = None,
) -> Optional[Tensor]:
    """Extend mask weights with *mean-scaled* self-loop weights.

    The self-loop of node ``v`` gets the mean of v's incident mask weights
    (1 for isolated nodes).  Together with degree renormalisation this makes
    the masked aggregation exactly invariant to a uniform rescaling of the
    mask — the classification loss can only profit from the mask by
    *re-ranking* neighbours, never by inflating or deflating all weights
    (which would otherwise let it bypass the subgraph loss).
    """
    if edge_weight is None:
        return None
    dst = edge_index[1]
    if layout is not None:
        counts = layout.counts.astype(np.float64)
    else:
        counts = np.bincount(dst, minlength=num_nodes).astype(np.float64)
    isolated = counts == 0
    safe_counts = np.maximum(counts, 1.0)
    incoming_sum = segment_sum(edge_weight, dst, num_nodes, layout=layout)
    self_weights = incoming_sum * as_tensor(1.0 / safe_counts)
    if isolated.any():
        self_weights = self_weights + as_tensor(isolated.astype(np.float64))
    return F.concatenate([edge_weight, self_weights], axis=0)


class GraphConv(Module):
    """Abstract base conv providing the edge-constant cache."""

    def __init__(self) -> None:
        super().__init__()
        self._edge_cache: Dict[Tuple, Tuple] = {}

    def _cached(self, edge_index: np.ndarray, builder, tag="") -> Tuple:
        # Key on content, not object identity: numpy reuses ids of collected
        # arrays, and explainers feed many distinct subgraphs through the
        # same conv.  Hashing the raw bytes is O(E) — negligible next to the
        # aggregation itself.  ``tag`` separates callers that cache different
        # artifacts for the same edge set (e.g. plain vs masked paths);
        # callers include ``num_nodes`` in it, since cached layouts and
        # normalisations depend on the node count as well as the edges.
        key = (tag, edge_index.shape[1], hash(edge_index.tobytes()))
        if key not in self._edge_cache:
            if len(self._edge_cache) > 8:
                self._edge_cache.clear()
            self._edge_cache[key] = builder()
        return self._edge_cache[key]

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        raise NotImplementedError


def weighted_aggregate(
    h: Tensor,
    edge_index: np.ndarray,
    num_nodes: int,
    coefficients: np.ndarray,
    edge_weight: Optional[Tensor],
    layouts: Optional[EdgeLayouts] = None,
) -> Tensor:
    """Aggregate ``sum_e coeff_e * w_e * h[src_e]`` onto destination nodes.

    ``coefficients`` are constant structural terms; ``edge_weight`` is an
    optional differentiable multiplier aligned with the same edges.
    ``layouts`` threads the conv's cached CSR layouts into the gather
    adjoint and the destination scatter.
    """
    src, dst = edge_index
    messages = gather_rows(h, src, layout=layouts.src if layouts else None)
    const = as_tensor(coefficients.reshape(-1, *([1] * (h.ndim - 1))))
    messages = messages * const
    if edge_weight is not None:
        w = edge_weight.reshape(-1, *([1] * (h.ndim - 1)))
        messages = messages * w
    return segment_sum(
        messages, dst, num_nodes, layout=layouts.dst if layouts else None
    )


def gcn_constants(
    edge_index: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray, EdgeLayouts]:
    """Self-looped edge index, symmetric-normalisation coefficients, and the
    CSR layout pair of the self-looped edge list."""
    full_index, coefficients = gcn_edge_norm(edge_index, num_nodes)
    return full_index, coefficients, edge_layouts(full_index, num_nodes)
