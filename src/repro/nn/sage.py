"""GraphSAGE layer with mean aggregation (Hamilton et al., 2017).

``out = x W_self + mean_{u in N(v)} x_u W_neigh``.  With differentiable
edge weights the neighbour term becomes a weighted mean whose denominator
is the (differentiable) weight sum, so a structure mask rescales neighbour
influence smoothly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, as_tensor, gather_rows, segment_mean, segment_sum
from ..tensor.init import xavier_uniform, zeros_init
from .base import GraphConv, edge_layouts


class SAGEConv(GraphConv):
    """One GraphSAGE (mean aggregator) convolution."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight_self = xavier_uniform(in_features, out_features, rng)
        self.weight_neigh = xavier_uniform(in_features, out_features, rng)
        self.bias = zeros_init((out_features,)) if bias else None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        layouts = self._cached(
            edge_index,
            lambda: (edge_layouts(edge_index, num_nodes),),
            tag=("plain", num_nodes),
        )[0]
        src, dst = edge_index
        messages = gather_rows(x, src, layout=layouts.src)
        if edge_weight is None:
            aggregated = segment_mean(messages, dst, num_nodes, layout=layouts.dst)
        else:
            w = edge_weight.reshape(-1, 1)
            weighted = segment_sum(messages * w, dst, num_nodes, layout=layouts.dst)
            denom = segment_sum(
                edge_weight, dst, num_nodes, layout=layouts.dst
            ) + as_tensor(1e-12)
            aggregated = weighted / denom.reshape(-1, 1)
        out = x @ self.weight_self + aggregated @ self.weight_neigh
        if self.bias is not None:
            out = out + self.bias
        return out
