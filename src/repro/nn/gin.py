"""Graph Isomorphism Network layer (Xu et al., 2019).

``out = MLP((1 + eps) * x + sum_{u in N(v)} w_uv * x_u)`` with a learnable
``eps``.  GIN is part of the paper's "trivial GNN" taxonomy (Table 1) and
serves as an extra backbone in ablation benches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import MLP, Tensor, as_tensor, gather_rows, segment_sum
from ..tensor.tensor import Tensor as _Tensor
from .base import GraphConv, edge_layouts


class GINConv(GraphConv):
    """One GIN convolution with a 2-layer MLP update."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden_features: Optional[int] = None,
        train_eps: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        hidden_features = hidden_features or out_features
        self.in_features = in_features
        self.out_features = out_features
        self.mlp = MLP((in_features, hidden_features, out_features), rng=rng)
        self.eps = _Tensor(np.zeros(1), requires_grad=train_eps)
        if train_eps:
            self._parameters["eps"] = self.eps

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        layouts = self._cached(
            edge_index,
            lambda: (edge_layouts(edge_index, num_nodes),),
            tag=("plain", num_nodes),
        )[0]
        src, dst = edge_index
        messages = gather_rows(x, src, layout=layouts.src)
        if edge_weight is not None:
            messages = messages * edge_weight.reshape(-1, 1)
        aggregated = segment_sum(messages, dst, num_nodes, layout=layouts.dst)
        combined = x * (as_tensor(1.0) + self.eps) + aggregated
        return self.mlp(combined)
