"""UniMP-style transformer convolution (Shi et al., 2021).

UniMP is a unified message-passing model that (a) aggregates with scaled
dot-product graph attention (TransformerConv) and (b) propagates *labels*
alongside features: training labels are embedded and added to node inputs,
with a random portion masked each epoch so the model learns to reconstruct
them.  The label-propagation half lives in
:class:`repro.models.classifiers.UniMPClassifier`; this module provides the
attention layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, as_tensor, gather_rows, segment_softmax, segment_sum
from ..tensor.init import xavier_uniform, zeros_init
from .base import GraphConv, extend_edge_weight_scaled, looped_constants


class TransformerConv(GraphConv):
    """Scaled dot-product graph attention with a gated root skip."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        heads: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        if out_features % heads:
            raise ValueError(f"out_features={out_features} not divisible by heads={heads}")
        self.in_features = in_features
        self.out_features = out_features
        self.heads = heads
        self.head_dim = out_features // heads
        self.weight_query = xavier_uniform(in_features, out_features, rng)
        self.weight_key = xavier_uniform(in_features, out_features, rng)
        self.weight_value = xavier_uniform(in_features, out_features, rng)
        self.weight_skip = xavier_uniform(in_features, out_features, rng)
        self.bias = zeros_init((out_features,))
        self.last_attention: Optional[np.ndarray] = None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        full_index, layouts = self._cached(
            edge_index,
            lambda: looped_constants(edge_index, num_nodes),
            tag=("loops", num_nodes),
        )
        src, dst = full_index
        shape = (num_nodes, self.heads, self.head_dim)
        query = (x @ self.weight_query).reshape(*shape)
        key = (x @ self.weight_key).reshape(*shape)
        value = (x @ self.weight_value).reshape(*shape)
        scores = (
            gather_rows(query, dst, layout=layouts.dst)
            * gather_rows(key, src, layout=layouts.src)
        ).sum(axis=-1)
        scores = scores * (1.0 / np.sqrt(self.head_dim))
        alpha = segment_softmax(scores, dst, num_nodes, layout=layouts.dst)
        self.last_attention = alpha.data.copy()
        w = extend_edge_weight_scaled(edge_weight, edge_index, num_nodes)
        if w is not None:
            # Renormalise mask-reweighted attention per destination (see GATConv).
            alpha = alpha * w.reshape(-1, 1)
            totals = segment_sum(alpha, dst, num_nodes, layout=layouts.dst) + as_tensor(1e-9)
            alpha = alpha / gather_rows(totals, dst, layout=layouts.dst)
        messages = gather_rows(value, src, layout=layouts.src) * alpha.reshape(-1, self.heads, 1)
        out = segment_sum(messages, dst, num_nodes, layout=layouts.dst).reshape(
            num_nodes, self.out_features
        )
        return out + x @ self.weight_skip + self.bias
