"""The two-layer graph encoder shared by both SES phases (paper Eq. 2).

``Z = Conv2(sigma(Conv1(A, X)), A)`` where ``H = Conv1(A, X)`` — the first
layer's *pre-activation* hidden representation — also feeds the mask
generator (Eq. 3).  The backbone conv is pluggable ("gcn" or "gat",
following §5.2: "We only report results of SES with GCN and GAT").

The encoder accepts an optional differentiable ``edge_weight`` so the same
parameters serve the plain forward (Eq. 2), the masked forward of
explainable training (Eq. 8, over ``A^(k)``) and the masked forward of
enhanced predictive learning (Eq. 10, over ``A``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import Linear, Module, Tensor, functional as F
from .fusedgat import FusedGATConv
from .gat import GATConv
from .gcn import GCNConv
from .sage import SAGEConv

_BACKBONES = {"gcn", "gat", "fusedgat", "sage"}


def _make_conv(backbone: str, in_features: int, out_features: int, rng, heads: int):
    if backbone == "gcn":
        return GCNConv(in_features, out_features, rng=rng)
    if backbone == "gat":
        return GATConv(in_features, out_features, heads=heads, rng=rng)
    if backbone == "fusedgat":
        return FusedGATConv(in_features, out_features, heads=heads, rng=rng)
    if backbone == "sage":
        return SAGEConv(in_features, out_features, rng=rng)
    raise ValueError(f"unknown backbone {backbone!r}; expected one of {sorted(_BACKBONES)}")


class GraphEncoder(Module):
    """Two-layer GNN producing hidden states ``H`` and logits ``Z``.

    Parameters
    ----------
    in_features / hidden_features / out_features:
        Input width, hidden width (128 in the paper) and class count.
    backbone:
        ``"gcn"``, ``"gat"``, ``"fusedgat"`` or ``"sage"``.
    dropout:
        Dropout applied to the activated hidden layer during training.
    heads:
        Attention heads for attention backbones (output layer uses 1 head
        via averaging, as in the original GAT).
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        backbone: str = "gcn",
        dropout: float = 0.5,
        heads: int = 4,
        representation_head: bool = False,
        num_layers: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 2:
            raise ValueError("GraphEncoder needs at least 2 layers")
        rng = rng or np.random.default_rng()
        self.backbone = backbone
        self.hidden_features = hidden_features
        self.out_features = out_features
        self.dropout_p = dropout
        self._rng = rng
        self.representation_head = representation_head
        self.num_layers = num_layers
        self.conv1 = _make_conv(backbone, in_features, hidden_features, rng, heads)
        # Optional middle layers (structural-role tasks need 3 hops; the
        # GNNExplainer benchmarks use 3-layer GCNs).
        self.middle_convs = []
        for i in range(num_layers - 2):
            conv = _make_conv(backbone, hidden_features, hidden_features, rng, heads)
            self.register_module(f"conv_mid_{i}", conv)
            self.middle_convs.append(conv)
        # With a representation head (the SES configuration — the paper's
        # Fig. 5 embeddings are 128-d), conv2 keeps the hidden width and a
        # linear head produces class logits; the triplet loss then operates
        # on the representation, not the logits.
        conv2_out = hidden_features if representation_head else out_features
        if backbone in ("gat", "fusedgat"):
            self.conv2 = _make_conv(backbone, hidden_features, conv2_out, rng, heads=1)
        else:
            self.conv2 = _make_conv(backbone, hidden_features, conv2_out, rng, heads)
        self.head = (
            Linear(hidden_features, out_features, rng=rng) if representation_head else None
        )
        self.activation = F.elu if backbone in ("gat", "fusedgat") else F.relu

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        """Return logits ``Z``."""
        _, logits = self.forward_with_hidden(x, edge_index, num_nodes, edge_weight)
        return logits

    def forward_with_hidden(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Return ``(H, Z)`` — hidden states for the mask generator and logits."""
        hidden, _, logits = self.forward_full(x, edge_index, num_nodes, edge_weight)
        return hidden, logits

    def forward_full(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Return ``(H, R, Z)``: first-layer hidden states, the output
        representation (equal to ``Z`` without a representation head), and
        class logits."""
        hidden = self.conv1(x, edge_index, num_nodes, edge_weight)
        activated = self.activation(hidden)
        if self.dropout_p > 0:
            activated = F.dropout(
                activated, self.dropout_p, training=self.training, rng=self._rng
            )
        for conv in self.middle_convs:
            activated = self.activation(conv(activated, edge_index, num_nodes, edge_weight))
        representation = self.conv2(activated, edge_index, num_nodes, edge_weight)
        if self.head is not None:
            logits = self.head(self.activation(representation))
        else:
            logits = representation
        return hidden, representation, logits

    def attention_scores(self) -> np.ndarray:
        """First-layer attention per edge (attention backbones only)."""
        if not hasattr(self.conv1, "edge_attention_scores"):
            raise RuntimeError(f"backbone {self.backbone!r} has no attention scores")
        return self.conv1.edge_attention_scores()
