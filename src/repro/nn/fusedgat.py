"""FusedGAT layer (Zhang et al., MLSys 2022).

FusedGAT's contribution is *computational*: it fuses the gather →
attention → scatter pipeline of GAT into single kernels to cut memory
traffic, while producing numerically identical outputs.  Our reproduction
mirrors that contract: :class:`FusedGATConv` computes the same attention as
:class:`~repro.nn.gat.GATConv` but fuses the per-edge score computation
(one gather of pre-reduced scalars instead of two gathers of full feature
rows), which is the same algebraic refactoring the paper exploits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, as_tensor, functional as F, gather_rows, segment_softmax, segment_sum
from .base import extend_edge_weight_scaled, looped_constants
from .gat import GATConv


class FusedGATConv(GATConv):
    """GAT with fused edge-score computation (same math, less edge memory)."""

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        full_index, layouts = self._cached(
            edge_index,
            lambda: looped_constants(edge_index, num_nodes),
            tag=("loops", num_nodes),
        )
        src, dst = full_index
        h = (x @ self.weight).reshape(num_nodes, self.heads, self.head_dim)
        # Fusion: reduce the attention dot products to per-node scalars
        # *before* the edge gather, so the edge stage only touches (N, H)
        # arrays — the "coordinated computation" trick of FusedGAT.
        node_scores = F.concatenate(
            [
                ((h * self.att_src).sum(axis=-1)).reshape(num_nodes, self.heads, 1),
                ((h * self.att_dst).sum(axis=-1)).reshape(num_nodes, self.heads, 1),
            ],
            axis=2,
        )
        gathered_src = gather_rows(node_scores, src, layout=layouts.src)
        gathered_dst = gather_rows(node_scores, dst, layout=layouts.dst)
        edge_scores = gathered_src[:, :, 0] + gathered_dst[:, :, 1]
        edge_scores = F.leaky_relu(edge_scores, self.negative_slope)
        alpha = segment_softmax(edge_scores, dst, num_nodes, layout=layouts.dst)
        self.last_attention = alpha.data.copy()
        self.last_edge_index = full_index
        w = extend_edge_weight_scaled(edge_weight, edge_index, num_nodes)
        if w is not None:
            # Renormalise mask-reweighted attention per destination (see GATConv).
            alpha = alpha * w.reshape(-1, 1)
            totals = segment_sum(alpha, dst, num_nodes, layout=layouts.dst) + as_tensor(1e-9)
            alpha = alpha / gather_rows(totals, dst, layout=layouts.dst)
        messages = gather_rows(h, src, layout=layouts.src) * alpha.reshape(-1, self.heads, 1)
        out = segment_sum(messages, dst, num_nodes, layout=layouts.dst)
        if self.concat:
            out = out.reshape(num_nodes, self.heads * self.head_dim)
        else:
            out = out.mean(axis=1)
        if self.bias is not None:
            out = out + self.bias
        return out
