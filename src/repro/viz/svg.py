"""Dependency-free SVG renderers for the paper's figures.

matplotlib is unavailable offline, so the figure harnesses emit real
vector graphics through these small generators instead: scatter plots
(Fig. 5), heatmaps (Fig. 7), line charts (loss curves), and grouped bar
charts (Fig. 4 / Table 4 summaries).  Every function returns the SVG
document as a string and optionally writes it to disk; the output is
plain SVG 1.1 that any browser renders.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, Path]

# A colour-blind-safe categorical palette (Okabe–Ito).
PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
    "#332288", "#44AA99", "#882255", "#117733",
)


def _document(width: int, height: int, body: List[str], title: str = "") -> str:
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="18" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14" font-weight="bold">'
            f"{_escape(title)}</text>"
        )
    parts.extend(body)
    parts.append("</svg>")
    return "\n".join(parts)


def _escape(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _maybe_write(svg: str, path: Optional[PathLike]) -> str:
    if path is not None:
        Path(path).write_text(svg)
    return svg


def _scale(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    vmin, vmax = float(values.min()), float(values.max())
    span = (vmax - vmin) or 1.0
    return lo + (values - vmin) / span * (hi - lo)


def scatter_svg(
    points: np.ndarray,
    labels: np.ndarray,
    path: Optional[PathLike] = None,
    title: str = "",
    width: int = 480,
    height: int = 400,
    radius: float = 3.0,
) -> str:
    """2-D scatter coloured by integer class label (Fig. 5 panels)."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (N, 2), got {points.shape}")
    if len(labels) != len(points):
        raise ValueError("labels and points disagree in length")
    margin = 30
    xs = _scale(points[:, 0], margin, width - margin)
    ys = _scale(-points[:, 1], margin, height - margin)  # flip y for SVG
    body = [
        f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" '
        f'fill="{PALETTE[int(label) % len(PALETTE)]}" fill-opacity="0.75"/>'
        for x, y, label in zip(xs, ys, labels)
    ]
    return _maybe_write(_document(width, height, body, title), path)


def heatmap_svg(
    matrix: np.ndarray,
    path: Optional[PathLike] = None,
    title: str = "",
    cell: int = 6,
    max_cells: int = 160,
) -> str:
    """Matrix heatmap, light→dark blue over [min, max] (Fig. 7 masks)."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    row_step = max(1, matrix.shape[0] // max_cells)
    col_step = max(1, matrix.shape[1] // max_cells)
    pooled = matrix[::row_step, ::col_step]
    vmin, vmax = float(pooled.min()), float(pooled.max())
    span = (vmax - vmin) or 1.0
    rows, cols = pooled.shape
    width = cols * cell + 20
    height = rows * cell + 40
    body = []
    for r in range(rows):
        for c in range(cols):
            value = (pooled[r, c] - vmin) / span
            shade = int(235 - value * 180)
            body.append(
                f'<rect x="{10 + c * cell}" y="{30 + r * cell}" '
                f'width="{cell}" height="{cell}" '
                f'fill="rgb({shade},{shade},255)"/>'
            )
    return _maybe_write(_document(width, height, body, title), path)


def line_chart_svg(
    series: Dict[str, Sequence[float]],
    path: Optional[PathLike] = None,
    title: str = "",
    width: int = 520,
    height: int = 320,
) -> str:
    """Multi-series line chart with a legend (loss / accuracy curves)."""
    if not series:
        raise ValueError("series must not be empty")
    margin = 40
    all_values = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    vmin, vmax = float(all_values.min()), float(all_values.max())
    span = (vmax - vmin) or 1.0
    body = [
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - 10}" '
        f'y2="{height - margin}" stroke="black"/>',
        f'<line x1="{margin}" y1="{height - margin}" x2="{margin}" y2="20" '
        f'stroke="black"/>',
        f'<text x="{margin - 5}" y="{height - margin + 4}" text-anchor="end" '
        f'font-family="sans-serif" font-size="10">{vmin:.2f}</text>',
        f'<text x="{margin - 5}" y="28" text-anchor="end" '
        f'font-family="sans-serif" font-size="10">{vmax:.2f}</text>',
    ]
    for index, (name, values) in enumerate(series.items()):
        values = np.asarray(values, dtype=np.float64)
        if len(values) < 2:
            continue
        xs = np.linspace(margin, width - 10, len(values))
        ys = (height - margin) - (values - vmin) / span * (height - margin - 30)
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
        colour = PALETTE[index % len(PALETTE)]
        body.append(
            f'<polyline points="{points}" fill="none" stroke="{colour}" '
            f'stroke-width="1.5"/>'
        )
        body.append(
            f'<text x="{width - 12}" y="{30 + index * 14}" text-anchor="end" '
            f'font-family="sans-serif" font-size="11" fill="{colour}">'
            f"{_escape(name)}</text>"
        )
    return _maybe_write(_document(width, height, body, title), path)


def bar_chart_svg(
    groups: Dict[str, Dict[str, float]],
    path: Optional[PathLike] = None,
    title: str = "",
    width: int = 560,
    height: int = 340,
) -> str:
    """Grouped bar chart: {group: {series: value}} (Table-4-style summaries)."""
    if not groups:
        raise ValueError("groups must not be empty")
    series_names: List[str] = []
    for values in groups.values():
        for name in values:
            if name not in series_names:
                series_names.append(name)
    margin = 40
    vmax = max(max(values.values()) for values in groups.values()) or 1.0
    group_width = (width - margin - 20) / len(groups)
    bar_width = max(2.0, group_width / (len(series_names) + 1))
    body = [
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - 10}" '
        f'y2="{height - margin}" stroke="black"/>',
    ]
    for g_index, (group, values) in enumerate(groups.items()):
        x0 = margin + g_index * group_width
        for s_index, name in enumerate(series_names):
            value = values.get(name, 0.0)
            bar_height = value / vmax * (height - margin - 40)
            x = x0 + s_index * bar_width
            y = height - margin - bar_height
            colour = PALETTE[s_index % len(PALETTE)]
            body.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width * 0.9:.1f}" '
                f'height="{bar_height:.1f}" fill="{colour}"/>'
            )
        body.append(
            f'<text x="{x0 + group_width / 2:.1f}" y="{height - margin + 14}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="10">'
            f"{_escape(group)}</text>"
        )
    for s_index, name in enumerate(series_names):
        colour = PALETTE[s_index % len(PALETTE)]
        body.append(
            f'<text x="{width - 12}" y="{30 + s_index * 14}" text-anchor="end" '
            f'font-family="sans-serif" font-size="11" fill="{colour}">'
            f"{_escape(name)}</text>"
        )
    return _maybe_write(_document(width, height, body, title), path)
