"""Dependency-free SVG figure rendering."""

from .svg import PALETTE, bar_chart_svg, heatmap_svg, line_chart_svg, scatter_svg

__all__ = ["scatter_svg", "heatmap_svg", "line_chart_svg", "bar_chart_svg", "PALETTE"]
