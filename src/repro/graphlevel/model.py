"""Graph-level classifier with self-explained edge masks (SES-G).

The paper's future-work direction: the SES recipe applied to whole-graph
labels.  One encoder runs over the disjoint-union batch; a segment-mean
readout pools node representations per graph; and — exactly as in the
node-level SES — a zero-valued probe on the edge weights accumulates the
per-edge sensitivity of the classification loss during training, yielding
a built-in edge explanation per graph without any post-hoc pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..metrics import accuracy
from ..nn import GraphEncoder
from ..tensor import (
    Adam,
    Linear,
    Module,
    Tensor,
    functional as F,
    no_grad,
    segment_mean,
    segment_sum,
)
from ..utils import make_rng


class GraphClassifier(Module):
    """Encoder → segment-mean pooling → linear head."""

    def __init__(
        self,
        num_features: int,
        hidden: int,
        num_classes: int,
        backbone: str = "gcn",
        dropout: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.encoder = GraphEncoder(
            num_features, hidden, hidden, backbone=backbone, dropout=dropout,
            representation_head=True, rng=rng,
        )
        self.head = Linear(hidden, num_classes, rng=rng)

    def forward(self, batch, edge_weight: Optional[Tensor] = None) -> Tensor:
        _, representation, _ = self.encoder.forward_full(
            Tensor(batch.features), batch.edge_index, batch.num_nodes, edge_weight
        )
        # Sum pooling: motif *presence* is a counting property, which mean
        # pooling washes out on graphs of equal size.
        pooled = segment_sum(representation, batch.graph_ids, batch.num_graphs)
        return self.head(pooled)


@dataclass
class GraphSESResult:
    """Training outcome plus built-in explanations."""

    train_accuracy: float
    test_accuracy: float
    losses: List[float]
    edge_sensitivity: np.ndarray
    edge_index: np.ndarray
    explanations: Dict[int, List[Tuple[Tuple[int, int], float]]] = field(
        default_factory=dict
    )


class GraphSES:
    """Self-explained graph classifier (sensitivity-readout variant).

    Parameters
    ----------
    batch:
        A :class:`~repro.graphlevel.data.GraphBatch`.
    train_fraction:
        Graphs are split at the *graph* level.
    """

    def __init__(
        self,
        batch,
        hidden: int = 32,
        backbone: str = "gcn",
        learning_rate: float = 0.01,
        train_fraction: float = 0.7,
        seed: int = 0,
    ) -> None:
        self.batch = batch
        self.rng = make_rng(seed)
        self.model = GraphClassifier(
            batch.features.shape[1], hidden, batch.num_classes,
            backbone=backbone, rng=self.rng,
        )
        permuted = self.rng.permutation(batch.num_graphs)
        cut = max(1, int(train_fraction * batch.num_graphs))
        self.train_graphs = permuted[:cut]
        self.test_graphs = permuted[cut:]
        self.edge_sensitivity = np.zeros(batch.edge_index.shape[1])

    def fit(self, epochs: int = 80) -> GraphSESResult:
        batch = self.batch
        optimizer = Adam(self.model.parameters(), lr=0.01)
        train_mask = np.zeros(batch.num_graphs, dtype=bool)
        train_mask[self.train_graphs] = True
        losses: List[float] = []
        for epoch in range(epochs):
            self.model.train()
            optimizer.zero_grad()
            probe = Tensor(np.zeros(batch.edge_index.shape[1]), requires_grad=True)
            ones = Tensor(np.ones(batch.edge_index.shape[1]))
            logits = self.model(batch, edge_weight=ones + probe)
            loss = F.cross_entropy(logits, batch.labels, mask=train_mask)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
            # Accumulate from the first quarter of training: once the loss
            # saturates near zero, gradients (and sensitivities) vanish.
            if probe.grad is not None and epoch >= epochs // 4:
                self.edge_sensitivity += np.maximum(-probe.grad, 0.0)

        # Explanation pass for every graph, including test graphs (the
        # training loss only touches train graphs' edges): sensitivity of
        # the model's own predicted-label loss, GRAD-style but through the
        # same probe mechanism.
        self.model.eval()
        with no_grad():
            logits = self.model(batch)
        predictions = logits.data.argmax(axis=1)
        probe = Tensor(np.zeros(batch.edge_index.shape[1]), requires_grad=True)
        ones = Tensor(np.ones(batch.edge_index.shape[1]))
        confidence = F.cross_entropy(
            self.model(batch, edge_weight=ones + probe), predictions
        )
        confidence.backward()
        if probe.grad is not None:
            scale = self.edge_sensitivity.max()
            boost = np.maximum(-probe.grad, 0.0)
            if boost.max() > 0:
                # Same scale as the accumulated signal so neither dominates.
                normaliser = scale / boost.max() if scale > 0 else 1.0
                self.edge_sensitivity += boost * normaliser
        explanations = {
            int(g): self.explain_graph(int(g)) for g in range(batch.num_graphs)
        }
        return GraphSESResult(
            train_accuracy=accuracy(predictions, batch.labels, mask=train_mask),
            test_accuracy=accuracy(predictions, batch.labels, mask=~train_mask),
            losses=losses,
            edge_sensitivity=self.edge_sensitivity.copy(),
            edge_index=batch.edge_index,
            explanations=explanations,
        )

    def explain_graph(self, graph_index: int, top_k: int = 8) -> List[Tuple[Tuple[int, int], float]]:
        """Top edges of one graph by accumulated sensitivity (union ids)."""
        batch = self.batch
        member = batch.graph_ids[batch.edge_index[0]] == graph_index
        columns = np.flatnonzero(member)
        if len(columns) == 0:
            return []
        scores = self.edge_sensitivity[columns]
        order = np.argsort(-scores)[:top_k]
        return [
            (
                (int(batch.edge_index[0, columns[i]]), int(batch.edge_index[1, columns[i]])),
                float(scores[i]),
            )
            for i in order
        ]
