"""Graph-level extension (the paper's future-work direction): batching,
a motif-presence benchmark, and the self-explained graph classifier."""

from .data import GraphBatch, make_batch, motif_presence_dataset
from .model import GraphClassifier, GraphSES, GraphSESResult

__all__ = [
    "GraphBatch",
    "make_batch",
    "motif_presence_dataset",
    "GraphClassifier",
    "GraphSES",
    "GraphSESResult",
]
