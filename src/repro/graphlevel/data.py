"""Graph-level classification data: batches and a synthetic benchmark.

The node-level stack extends to graph classification through the classic
disjoint-union trick: a batch of graphs becomes one block-diagonal graph
plus a ``graph_ids`` vector, so every conv in :mod:`repro.nn` works
unchanged and pooling is a segment reduction.

:func:`motif_presence_dataset` generates the standard sanity benchmark for
graph-level explainability (GNNExplainer/GSAT style): random BA graphs,
where the positive class has a planted motif (house or cycle) whose edges
are the ground-truth explanation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import Graph
from ..datasets.synthetic import _barabasi_albert_edges, _cycle_motif, _house_motif


@dataclass
class GraphBatch:
    """A list of graphs merged into one disjoint-union graph."""

    graphs: List[Graph]
    labels: np.ndarray
    edge_index: np.ndarray
    features: np.ndarray
    graph_ids: np.ndarray
    node_offsets: np.ndarray
    extra: Dict = field(default_factory=dict)

    @property
    def num_graphs(self) -> int:
        return len(self.graphs)

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1

    def nodes_of(self, graph_index: int) -> np.ndarray:
        start = self.node_offsets[graph_index]
        stop = (
            self.node_offsets[graph_index + 1]
            if graph_index + 1 < len(self.node_offsets)
            else self.num_nodes
        )
        return np.arange(start, stop)


def make_batch(graphs: Sequence[Graph], labels: Sequence[int]) -> GraphBatch:
    """Merge graphs into a block-diagonal union."""
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) != len(graphs):
        raise ValueError(f"{len(labels)} labels for {len(graphs)} graphs")
    offsets = []
    edge_blocks = []
    feature_blocks = []
    graph_ids = []
    offset = 0
    for index, graph in enumerate(graphs):
        offsets.append(offset)
        edge_blocks.append(graph.edge_index() + offset)
        feature_blocks.append(graph.features)
        graph_ids.append(np.full(graph.num_nodes, index, dtype=np.int64))
        offset += graph.num_nodes
    return GraphBatch(
        graphs=list(graphs),
        labels=labels,
        edge_index=np.hstack(edge_blocks) if edge_blocks else np.zeros((2, 0), dtype=np.int64),
        features=np.vstack(feature_blocks),
        graph_ids=np.concatenate(graph_ids),
        node_offsets=np.array(offsets, dtype=np.int64),
    )


def _random_ba_graph(num_nodes: int, rng: np.random.Generator) -> List[Tuple[int, int]]:
    return _barabasi_albert_edges(num_nodes, attach=2, rng=rng)


def motif_presence_dataset(
    num_graphs: int = 60,
    base_nodes: int = 14,
    motif: str = "house",
    seed: int = 0,
) -> GraphBatch:
    """Binary graph classification: does the graph contain the motif?

    Class 1 graphs are BA graphs with an attached motif; class 0 graphs are
    plain BA graphs padded with the same number of extra random nodes, so
    size alone cannot separate the classes.  Ground-truth motif edges per
    positive graph are stored in ``batch.extra["gt_edges"]`` (graph index →
    set of directed edge tuples in *union* coordinates).
    """
    if motif not in ("house", "cycle"):
        raise ValueError("motif must be 'house' or 'cycle'")
    rng = np.random.default_rng(seed)
    build_motif = _house_motif if motif == "house" else _cycle_motif
    motif_size = 5 if motif == "house" else 6

    graphs: List[Graph] = []
    labels: List[int] = []
    gt_edges: Dict[int, set] = {}
    pending_gt: List[Optional[List[Tuple[int, int]]]] = []
    for index in range(num_graphs):
        positive = index % 2 == 1
        edges = _random_ba_graph(base_nodes, rng)
        if positive:
            motif_edges, _ = build_motif(base_nodes)
            edges = edges + motif_edges
            edges.append((int(rng.integers(0, base_nodes)), base_nodes))
            pending_gt.append(motif_edges)
        else:
            # Same node budget: pad with an attached *chain* — equal node
            # count and similar edge count, but no motif structure.
            for extra in range(motif_size):
                node = base_nodes + extra
                previous = node - 1 if extra > 0 else int(rng.integers(0, base_nodes))
                edges.append((previous, node))
            pending_gt.append(None)
        total = base_nodes + motif_size
        graph = Graph.from_edges(total, np.array(edges),
                                 features=np.ones((total, 4)))
        # Structural features: the graph-level label ("contains the motif")
        # is a property of the motif subgraph itself, so degree features do
        # not break the explanation ground truth the way they do for
        # node-level role labels (docs/REPRODUCTION_NOTES.md §5).
        degrees = graph.degrees()
        graph.features[:, 1] = degrees / max(1.0, degrees.max())
        # Triangle participation: GCN message passing is 1-WL bounded and
        # cannot infer cycles from degrees alone, so expose the count of
        # triangles through each node (diag(A^3) / 2).
        adjacency = (graph.adjacency != 0).astype(float)
        triangles = np.asarray((adjacency @ adjacency @ adjacency).diagonal()) / 2.0
        graph.features[:, 2] = triangles / max(1.0, triangles.max())
        graph.features[:, 3] = (degrees >= 4).astype(float)
        graphs.append(graph)
        labels.append(1 if positive else 0)

    batch = make_batch(graphs, labels)
    for index, motif_edges in enumerate(pending_gt):
        if motif_edges is None:
            continue
        offset = batch.node_offsets[index]
        edge_set = set()
        for u, v in motif_edges:
            edge_set.add((u + offset, v + offset))
            edge_set.add((v + offset, u + offset))
        gt_edges[index] = edge_set
    batch.extra["gt_edges"] = gt_edges
    return batch
