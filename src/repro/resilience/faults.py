"""Fault injection: simulated crashes, NaN poisoning, checkpoint corruption.

A recovery path that is never exercised is a recovery path that does not
work.  This module gives the test-suite (and anyone debugging resilience in
the field) deterministic ways to break training on purpose:

* :class:`FaultPlan` — a parsed schedule of :class:`FaultSpec`\\ s, built
  from the ``REPRO_FAULTS`` environment variable or a spec string.  The
  grammar is ``kind@phase:epoch[:field]`` with specs comma-separated:

  - ``crash@explainable:5`` — raise :class:`SimulatedCrash` at the start of
    explainable-training epoch 5 (the process-kill stand-in; nothing after
    the last completed epoch survives);
  - ``nan@predictive:3`` — poison the first op output of predictive epoch 3
    with a NaN (exercises the watchdog → recovery-policy path);
  - ``nan@explainable:2:relu`` — poison only ops whose name contains
    ``relu``;
  - ``kill_worker@explainable:2:1`` — parallel worker of rank 1 dies
    (``os._exit``) at the start of its first shard of explainable epoch 2
    (exercises the supervisor's dead-worker restart path — docs/PARALLEL.md);
  - ``hang_worker@predictive:0:0`` — worker 0 stops responding (sleeps
    without heartbeating) instead of dying, so only the liveness watchdog
    can catch it.

  Malformed specs raise a one-line :class:`ValueError` that names the
  offending token — a typo in ``REPRO_FAULTS`` should read as a usage
  error, not a stack trace from an unpack deep inside the trainer.

* :func:`truncate_file` / :func:`corrupt_file` — byte-level checkpoint
  damage for the corruption-detection tests.

Each spec fires at most once per process, so a run that recovers from an
injected fault is not immediately re-injured by the same spec.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..tensor.tensor import Tensor

FAULT_KINDS = ("crash", "nan", "kill_worker", "hang_worker")
WORKER_KINDS = ("kill_worker", "hang_worker")
PHASES = ("explainable", "predictive", "any")
_GRAMMAR = "kind@phase:epoch[:op] (worker faults: kind@phase:epoch:rank)"


class SimulatedCrash(RuntimeError):
    """Deterministic stand-in for a mid-training process kill."""

    def __init__(self, phase: str, epoch: int) -> None:
        self.phase = phase
        self.epoch = epoch
        super().__init__(f"simulated crash at phase {phase!r}, epoch {epoch}")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what to break, where, and which op/worker."""

    kind: str
    phase: str
    epoch: int
    op: Optional[str] = None
    rank: Optional[int] = None

    def matches(self, phase: str, epoch: int) -> bool:
        return (self.phase in ("any", phase)) and self.epoch == epoch

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind@phase:epoch[:field]`` spec (see module docstring).

        Every rejection is a single-sentence :class:`ValueError` naming the
        offending token and the full spec it came from.
        """
        text = text.strip()
        if not text:
            raise ValueError(f"empty fault spec; expected {_GRAMMAR}")
        if "@" not in text:
            raise ValueError(
                f"bad fault spec {text!r}: missing '@'; expected {_GRAMMAR}"
            )
        kind, _, where = text.partition("@")
        kind = kind.strip().lower()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"bad fault kind {kind!r} in spec {text!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        parts = [p.strip() for p in where.split(":")]
        if len(parts) < 2 or len(parts) > 3:
            raise ValueError(
                f"bad fault spec {text!r}: {len(parts)} field(s) after '@'; "
                f"expected {_GRAMMAR}"
            )
        phase = parts[0].lower()
        if phase not in PHASES:
            raise ValueError(
                f"bad fault phase {phase!r} in spec {text!r}; "
                f"expected one of {PHASES}"
            )
        try:
            epoch = int(parts[1])
        except ValueError:
            raise ValueError(
                f"bad fault epoch {parts[1]!r} in spec {text!r}: not an integer"
            ) from None
        if epoch < 0:
            raise ValueError(
                f"bad fault epoch {epoch} in spec {text!r}: must be >= 0"
            )
        op: Optional[str] = None
        rank: Optional[int] = None
        if kind in WORKER_KINDS:
            if len(parts) != 3:
                raise ValueError(
                    f"bad fault spec {text!r}: {kind} faults need a worker "
                    f"rank (kind@phase:epoch:rank)"
                )
            try:
                rank = int(parts[2])
            except ValueError:
                raise ValueError(
                    f"bad worker rank {parts[2]!r} in spec {text!r}: "
                    "not an integer"
                ) from None
            if rank < 0:
                raise ValueError(
                    f"bad worker rank {rank} in spec {text!r}: must be >= 0"
                )
        elif kind == "crash":
            if len(parts) == 3:
                raise ValueError(
                    f"crash faults take no op field (spec {text!r})"
                )
        else:  # nan
            op = parts[2] if len(parts) == 3 else None
            if op == "":
                raise ValueError(
                    f"bad fault spec {text!r}: empty op field"
                )
        return cls(kind=kind, phase=phase, epoch=epoch, op=op, rank=rank)


class FaultPlan:
    """A one-shot-per-spec schedule of injected faults.

    Falsy when empty, so the trainer's per-epoch hooks cost a single branch
    in the (overwhelmingly common) no-faults case.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._fired: set = set()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({self.specs!r})"

    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        """Build a plan from a comma-separated spec string (None/'' = empty)."""
        if not text or not text.strip():
            return cls()
        return cls([FaultSpec.parse(part) for part in text.split(",") if part.strip()])

    @classmethod
    def from_env(cls, env: Optional[dict] = None) -> "FaultPlan":
        """Build a plan from ``REPRO_FAULTS`` (empty plan when unset)."""
        return cls.parse((env if env is not None else os.environ).get("REPRO_FAULTS"))

    def worker_specs(self) -> List[FaultSpec]:
        """The worker-targeted (kill/hang) specs, in declaration order.

        The parallel supervisor ships these to spawned workers and consumes
        them on its side when the corresponding failure is observed, so a
        restarted worker is not immediately re-injured by the same spec
        (see ``repro.parallel.supervisor``).
        """
        return [spec for spec in self.specs if spec.kind in WORKER_KINDS]

    # ------------------------------------------------------------------
    def _take(self, kind: str, phase: str, epoch: int) -> Optional[FaultSpec]:
        for index, spec in enumerate(self.specs):
            key = (index,)
            if key in self._fired or spec.kind != kind:
                continue
            if spec.matches(phase, epoch):
                self._fired.add(key)
                return spec
        return None

    def check_crash(self, phase: str, epoch: int) -> None:
        """Raise :class:`SimulatedCrash` if a crash fault is due here."""
        if self and self._take("crash", phase, epoch) is not None:
            raise SimulatedCrash(phase, epoch)

    @contextmanager
    def nan_injection(self, phase: str, epoch: int) -> Iterator[None]:
        """Poison one op output with NaN inside the block, if a fault is due.

        Wraps ``Tensor._make`` (the same choke point the profiler and the
        NaN watchdog use) so the first op whose name matches the spec — or
        simply the first op, when no op is named — gets ``NaN`` written into
        its output.  The poison then propagates through the graph exactly
        like an organic blow-up would, which is the point: downstream, the
        watchdog and the recovery policy cannot tell the difference.
        """
        spec = self._take("nan", phase, epoch) if self else None
        if spec is None:
            yield
            return
        original = Tensor.__dict__["_make"]
        make = original.__func__ if isinstance(original, staticmethod) else original
        state = {"armed": True}
        needle = spec.op

        def poisoned_make(data, parents, backward):
            out = make(data, parents, backward)
            if state["armed"] and (needle is None or needle in backward.__qualname__):
                if out.data.size:
                    out.data.flat[0] = np.nan
                    state["armed"] = False
            return out

        Tensor._make = staticmethod(poisoned_make)
        try:
            yield
        finally:
            Tensor._make = original


# ----------------------------------------------------------------------
# Byte-level checkpoint damage (for corruption-detection tests)
# ----------------------------------------------------------------------
def truncate_file(path: Union[str, Path], keep_fraction: float = 0.5) -> Path:
    """Truncate a file to a fraction of its size (a mid-write kill stand-in)."""
    path = Path(path)
    size = path.stat().st_size
    keep = max(1, int(size * keep_fraction))
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return path


def corrupt_file(path: Union[str, Path], offset: Optional[int] = None) -> Tuple[Path, int]:
    """Flip one byte (default: mid-file) — well-formed zip, damaged payload."""
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path}")
    position = size // 2 if offset is None else offset
    position = min(max(position, 0), size - 1)
    with open(path, "rb+") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))
    return path, position
