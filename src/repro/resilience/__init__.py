"""repro.resilience — fault-tolerant training runtime (docs/ROBUSTNESS.md).

Four pieces, layered bottom-up:

* :mod:`~repro.resilience.storage` — :class:`CheckpointError`, atomic
  ``.npz`` writes (tmp → fsync → rename) and per-array checksums; the
  durability substrate shared with :mod:`repro.io`.
* :mod:`~repro.resilience.snapshot` — :class:`TrainingSnapshot`: the *full*
  trainer state (parameters, Adam moments, RNG stream, phase/epoch
  counters, best-state, frozen masks, pair sets, history), with
  checksummed save/load and :func:`find_latest_snapshot` fallback.
  Restoring a snapshot reproduces the uninterrupted run bit-for-bit.
* :mod:`~repro.resilience.policy` — :class:`RecoveryPolicy` /
  :class:`RecoveryManager`: rollback to the last good snapshot on NaN or
  divergence, learning-rate backoff, bounded retries, then graceful
  degradation to frozen-mask phase-2-only training.
* :mod:`~repro.resilience.faults` — :class:`FaultPlan` (``REPRO_FAULTS``)
  injecting :class:`SimulatedCrash` and NaN poisons, plus byte-level
  checkpoint corruption helpers; the harness the crash-equivalence suite
  drives.
"""

from .faults import (
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
    corrupt_file,
    truncate_file,
)
from .policy import (
    RecoveryManager,
    RecoveryPolicy,
    TrainingDivergedError,
    recovery_policy_from_env,
)
from .snapshot import (
    LATEST_POINTER,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    TrainingSnapshot,
    capture_training_snapshot,
    find_latest_snapshot,
    load_snapshot,
    restore_training_snapshot,
    save_snapshot,
    write_latest_pointer,
)
from .storage import (
    CheckpointError,
    array_checksum,
    atomic_savez,
    atomic_write_text,
    checksum_manifest,
    open_npz,
    verify_checksums,
)

__all__ = [
    "CheckpointError",
    "array_checksum",
    "atomic_savez",
    "atomic_write_text",
    "checksum_manifest",
    "open_npz",
    "verify_checksums",
    "TrainingSnapshot",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "LATEST_POINTER",
    "capture_training_snapshot",
    "restore_training_snapshot",
    "save_snapshot",
    "load_snapshot",
    "find_latest_snapshot",
    "write_latest_pointer",
    "RecoveryPolicy",
    "RecoveryManager",
    "TrainingDivergedError",
    "recovery_policy_from_env",
    "FaultPlan",
    "FaultSpec",
    "SimulatedCrash",
    "corrupt_file",
    "truncate_file",
]
