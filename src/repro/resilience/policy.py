"""Automated rollback-and-retry for numerically fragile training.

Mask-learning objectives like SES's (and GNNExplainer/PGExplainer's) are
optimization-fragile: sparsity/entropy pressure can drive the mask scorer
into saturating saddle points where a gradient spike turns the whole run to
NaN.  Without recovery, a blow-up in epoch 280 of 300 throws away the run.

The policy implemented here is the classical spike-recovery loop:

1. **snapshot** — after every good epoch the :class:`RecoveryManager` keeps
   an in-memory :class:`~repro.resilience.snapshot.TrainingSnapshot`;
2. **rollback** — when the trainer reports an anomaly (non-finite loss,
   NaN-watchdog event, non-finite parameters) the last good snapshot is
   restored, which also rewinds the RNG stream and the training history;
3. **backoff** — the phase learning rate is scaled by ``lr_backoff`` after
   each rollback (cumulatively, surviving the restore) so a retry of the
   same epoch takes a smaller step through the same stochastic draws;
4. **bounded retries** — after ``max_retries`` consecutive failed epochs,
   or once the learning rate reaches ``min_lr``, the manager stops fighting:
   ``on_exhaustion="degrade"`` ends the phase at the last good state
   (phase 1 then freezes the masks it has, and training proceeds with
   frozen-mask predictive learning only), ``"raise"`` aborts with
   :class:`TrainingDivergedError`.

Every decision is emitted as a ``recovery_event`` in the run record, so a
recovered run documents exactly where and how it healed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from .snapshot import TrainingSnapshot, capture_training_snapshot, restore_training_snapshot


class TrainingDivergedError(ArithmeticError):
    """Training kept diverging after exhausting the recovery budget."""

    def __init__(self, phase: str, epoch: int, reason: str, retries: int) -> None:
        self.phase = phase
        self.epoch = epoch
        self.reason = reason
        self.retries = retries
        super().__init__(
            f"training diverged in phase {phase!r} at epoch {epoch} "
            f"after {retries} recovery attempt(s): {reason}"
        )


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the rollback-and-retry loop (see module docstring)."""

    max_retries: int = 3
    """Consecutive anomalous epochs tolerated before giving up; the counter
    resets whenever an epoch completes cleanly."""
    lr_backoff: float = 0.5
    """Multiplier applied to the phase learning rate on each rollback."""
    min_lr: float = 1e-6
    """Floor under the backed-off learning rate; reaching it exhausts the
    recovery budget even if retries remain."""
    snapshot_every: int = 1
    """Epoch interval between in-memory good snapshots (1 = every epoch)."""
    check_params: bool = True
    """Also scan parameters for NaN/Inf after each optimizer step (catches
    blow-ups that have not yet reached the loss scalar)."""
    on_exhaustion: str = "degrade"
    """``"degrade"``: end the phase at the last good state and continue the
    pipeline; ``"raise"``: abort with :class:`TrainingDivergedError`."""

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if not 0.0 < self.lr_backoff < 1.0:
            raise ValueError("lr_backoff must be in (0, 1)")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.on_exhaustion not in ("degrade", "raise"):
            raise ValueError("on_exhaustion must be 'degrade' or 'raise'")


def recovery_policy_from_env(env: Optional[dict] = None) -> Optional[RecoveryPolicy]:
    """Default policy when ``REPRO_RECOVERY`` opts in, else ``None``.

    ``REPRO_RECOVERY=1`` enables the defaults; ``REPRO_RECOVERY=raise``
    enables them with ``on_exhaustion="raise"``.  Unset/falsy leaves
    recovery off, preserving the historical fail-as-it-lies behaviour (and
    the bit-exactness of existing baseline run records).
    """
    value = (env if env is not None else os.environ).get("REPRO_RECOVERY", "")
    value = value.strip().lower()
    if value in ("", "0", "false", "no"):
        return None
    if value == "raise":
        return RecoveryPolicy(on_exhaustion="raise")
    return RecoveryPolicy()


class RecoveryManager:
    """Holds the last good snapshot and applies the policy on anomalies."""

    def __init__(self, policy: RecoveryPolicy, recorder=None) -> None:
        from ..obs.recorder import NullRecorder

        self.policy = policy
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.last_good: Optional[TrainingSnapshot] = None
        self.retries = 0
        self.total_rollbacks = 0
        self.lr_scale = 1.0
        self.degraded_phases: set = set()

    # ------------------------------------------------------------------
    def note_good(self, trainer) -> None:
        """Record a successfully-completed epoch (and maybe re-snapshot)."""
        self.retries = 0
        total_epochs = sum(trainer._completed.values())
        if self.last_good is None or total_epochs % self.policy.snapshot_every == 0:
            self.last_good = capture_training_snapshot(trainer)
            # The fresh snapshot bakes in the current (possibly backed-off)
            # learning rate, so the cumulative scale restarts at 1.
            self.lr_scale = 1.0

    def ensure_baseline(self, trainer) -> None:
        """Re-snapshot at phase entry so even epoch 0 can roll back.

        Always captures: a stale snapshot from the previous phase would be
        missing state created between phases (frozen masks, pair sets), so a
        phase-2 rollback would silently rewind into phase 1.
        """
        self.last_good = capture_training_snapshot(trainer)
        self.lr_scale = 1.0
        self.retries = 0

    # ------------------------------------------------------------------
    def on_anomaly(self, trainer, phase: str, epoch: int, reason: str) -> str:
        """Apply the policy; return ``"retry"`` or ``"degrade"`` (or raise).

        On ``"retry"`` the trainer has already been rolled back to the last
        good snapshot with the backed-off learning rate applied; on
        ``"degrade"`` it is rolled back and the phase should end there.
        """
        policy = self.policy
        self.retries += 1
        self.total_rollbacks += 1
        current_lr = self._phase_lr(trainer, phase)
        exhausted = (
            self.last_good is None
            or self.retries > policy.max_retries
            or (current_lr is not None and current_lr <= policy.min_lr)
        )
        if exhausted:
            if self.last_good is not None:
                restore_training_snapshot(trainer, self.last_good)
            self._emit(
                "degrade" if policy.on_exhaustion == "degrade" else "abort",
                trainer, phase, epoch, reason,
            )
            if policy.on_exhaustion == "raise":
                raise TrainingDivergedError(phase, epoch, reason, self.retries)
            self.degraded_phases.add(phase)
            return "degrade"
        restore_training_snapshot(trainer, self.last_good)
        self.lr_scale *= policy.lr_backoff
        new_lr = self._apply_backoff(trainer, phase)
        self._emit("rollback", trainer, phase, epoch, reason, new_lr=new_lr)
        return "retry"

    # ------------------------------------------------------------------
    def _phase_lr(self, trainer, phase: str) -> Optional[float]:
        optimizer = trainer._optimizers.get(phase)
        return None if optimizer is None else float(optimizer.lr)

    def _apply_backoff(self, trainer, phase: str) -> Optional[float]:
        """Re-apply the cumulative backoff after a restore reset the lr.

        Creates the phase optimizer if the rollback target predates it
        (anomaly at epoch 0): without this, an epoch-0 retry would repeat
        the identical step at the identical learning rate.
        """
        optimizer = trainer._optimizer(phase)
        optimizer.lr = max(self.policy.min_lr, float(optimizer.lr) * self.lr_scale)
        return float(optimizer.lr)

    def _emit(self, action: str, trainer, phase: str, epoch: int, reason: str, **extra) -> None:
        from ..obs.metrics import default_registry

        default_registry().counter(
            "repro_recovery_events_total",
            "Recovery-policy decisions (rollback/degrade/abort) by action",
        ).inc(action=action, phase=phase)
        self.recorder.emit(
            "recovery_event",
            action=action,
            phase=phase,
            epoch=epoch,
            reason=reason,
            retries=self.retries,
            total_rollbacks=self.total_rollbacks,
            lr_scale=self.lr_scale,
            rolled_back_to={k: int(v) for k, v in (self.last_good.completed if self.last_good else {}).items()},
            **extra,
        )
