"""Durable ``.npz`` storage: atomic writes, checksums, loud corruption errors.

This module is the lowest layer of :mod:`repro.resilience` and deliberately
imports nothing from the rest of the package (``repro.io`` depends on it, so
it must stay cycle-free).  It provides the three properties every on-disk
artefact of the training runtime needs:

* **atomicity** — :func:`atomic_savez` streams to a ``.tmp`` sibling,
  flushes, ``fsync``\\ s and ``os.replace``\\ s into place, so a kill at any
  byte offset leaves either the previous file or the new one, never a
  truncated hybrid;
* **integrity** — :func:`array_checksum` fingerprints dtype + shape + raw
  bytes, so a flipped bit inside an otherwise-well-formed zip member is
  detected at load time, not as a silent training divergence;
* **diagnosis** — :func:`open_npz` converts the opaque
  ``zipfile.BadZipFile`` / ``KeyError`` / ``EOFError`` zoo that
  ``numpy.load`` surfaces on damaged archives into one
  :class:`CheckpointError` naming the path and the failure.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Mapping, Union

import numpy as np

PathLike = Union[str, Path]


class CheckpointError(RuntimeError):
    """A serialized artefact is missing, truncated, corrupted or mismatched.

    Raised instead of ``zipfile.BadZipFile`` / ``KeyError`` /
    ``json.JSONDecodeError`` so callers can handle every load failure with
    one except clause, and the message always names the offending path.
    """


def _npz_path(path: PathLike) -> Path:
    """Mirror ``numpy.savez``'s extension behaviour for our handle-based writes."""
    path = Path(path)
    if path.suffix != ".npz":
        path = Path(str(path) + ".npz")
    return path


def fsync_directory(path: PathLike) -> None:
    """Flush a directory entry to disk (best effort; no-op where unsupported)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_savez(path: PathLike, compressed: bool = True, **arrays: np.ndarray) -> Path:
    """Write an ``.npz`` archive crash-safely; return the final path.

    The archive is fully written and fsynced under ``<path>.tmp`` before an
    atomic rename publishes it, so readers never observe a partial file and
    a mid-save kill leaves any previous version untouched.
    """
    path = _npz_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(str(path) + ".tmp")
    saver = np.savez_compressed if compressed else np.savez
    with open(tmp, "wb") as handle:
        saver(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomically write a small text file (e.g. a latest-snapshot pointer)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(str(path) + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)
    return path


@contextmanager
def open_npz(path: PathLike, what: str = "checkpoint") -> Iterator[np.lib.npyio.NpzFile]:
    """Open an ``.npz`` for reading; raise :class:`CheckpointError` on damage.

    Truncation is typically detected at open (bad end-of-central-directory),
    bit corruption at member access (CRC mismatch) — both paths, plus a
    missing file, surface as :class:`CheckpointError` naming ``path``.
    """
    path = Path(path)
    try:
        archive = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise CheckpointError(f"{what} not found: {path}") from None
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as error:
        raise CheckpointError(f"corrupt {what} at {path}: {error}") from error
    try:
        yield archive
    except KeyError as error:
        raise CheckpointError(
            f"{what} at {path} is missing entry {error}"
        ) from error
    except (zipfile.BadZipFile, EOFError, ValueError) as error:
        raise CheckpointError(f"corrupt {what} at {path}: {error}") from error
    finally:
        archive.close()


def array_checksum(array: np.ndarray) -> str:
    """SHA-256 over dtype + shape + raw bytes (first 16 hex digits).

    Hashing the dtype and shape alongside the buffer means a reinterpreted
    array (same bytes, different view) fails verification too.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode("utf-8"))
    digest.update(str(array.shape).encode("utf-8"))
    digest.update(array.tobytes())
    return digest.hexdigest()[:16]


def verify_checksums(
    arrays: Mapping[str, np.ndarray], checksums: Mapping[str, str], path: PathLike
) -> None:
    """Check every array against its recorded checksum; raise on any drift."""
    missing = sorted(set(checksums) - set(arrays))
    extra = sorted(set(arrays) - set(checksums))
    if missing or extra:
        raise CheckpointError(
            f"checkpoint at {path} array set mismatch: "
            f"missing={missing}, unexpected={extra}"
        )
    for key, expected in checksums.items():
        actual = array_checksum(arrays[key])
        if actual != expected:
            raise CheckpointError(
                f"checkpoint at {path} failed checksum for {key!r}: "
                f"expected {expected}, got {actual}"
            )


def checksum_manifest(arrays: Mapping[str, np.ndarray]) -> Dict[str, str]:
    """Checksum every array (the ``checksums`` manifest section)."""
    return {key: array_checksum(value) for key, value in arrays.items()}
