"""Full-state training snapshots: everything a mid-run kill would destroy.

A :class:`TrainingSnapshot` captures the *complete* state of a
:class:`~repro.core.ses.SESTrainer` at an epoch boundary — not just model
parameters (which :func:`repro.io.save_checkpoint` already covers) but every
piece of mutable state the two-phase schedule threads between epochs:

* model + mask-generator parameters, and the tracked best-validation state;
* each phase optimizer's internal state (Adam moments + step count, so bias
  correction resumes mid-stream instead of restarting at step 1);
* the shared numpy ``Generator`` bit-generator state (dropout, negative
  resampling and Algorithm-1 sampling all draw from one stream);
* phase/epoch counters, the training history, the accumulated edge
  sensitivity, frozen masks, negative sets and Algorithm-1 pair sets;
* NaN-watchdog / monitor accumulators.

Restoring a snapshot into a freshly-constructed trainer provably reproduces
the uninterrupted run bit-for-bit (``tests/resilience/``), because every
subsequent stochastic draw and parameter update depends only on the state
listed above.

On disk a snapshot is a single ``.npz``: one entry per array plus a
``__manifest__`` JSON blob carrying scalars, the config hash, the RNG state
and a per-array checksum table.  Writes are atomic
(:func:`repro.resilience.storage.atomic_savez`) and loads verify every
checksum, so truncation or bit corruption is rejected with a
:class:`~repro.resilience.storage.CheckpointError` instead of resuming from
garbage.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..obs.events import config_hash, jsonable
from ..utils.seed import capture_rng_state, restore_rng_state
from .storage import (
    CheckpointError,
    PathLike,
    atomic_savez,
    atomic_write_text,
    checksum_manifest,
    open_npz,
    verify_checksums,
)

SNAPSHOT_FORMAT = "ses-training-snapshot"
SNAPSHOT_VERSION = 1
LATEST_POINTER = "LATEST"


@dataclass
class TrainingSnapshot:
    """A trainer's full mutable state: JSON manifest + named arrays."""

    manifest: Dict = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def completed(self) -> Dict[str, int]:
        """Completed epoch count per phase."""
        return dict(self.manifest.get("completed", {}))

    @property
    def config_fingerprint(self) -> str:
        return self.manifest.get("config_hash", "")

    def describe(self) -> str:
        done = self.completed
        return (
            f"snapshot(config={self.config_fingerprint}, "
            f"explainable={done.get('explainable', 0)}, "
            f"predictive={done.get('predictive', 0)})"
        )


# ----------------------------------------------------------------------
# Packing helpers (dict-of-int-arrays <-> offset/value arrays)
# ----------------------------------------------------------------------
def _pack_int_map(mapping: Mapping[int, np.ndarray]) -> Dict[str, np.ndarray]:
    """Flatten ``{node: int array}`` into keys/offsets/values arrays."""
    keys = np.array(sorted(mapping), dtype=np.int64)
    lengths = np.array([len(mapping[int(k)]) for k in keys], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    if keys.size:
        chunks = [np.asarray(mapping[int(k)], dtype=np.int64).ravel() for k in keys]
        values = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    else:
        values = np.empty(0, dtype=np.int64)
    return {"keys": keys, "offsets": offsets, "values": values}


def _unpack_int_map(
    keys: np.ndarray, offsets: np.ndarray, values: np.ndarray
) -> Dict[int, np.ndarray]:
    return {
        int(key): values[offsets[i]: offsets[i + 1]].astype(np.int64)
        for i, key in enumerate(keys)
    }


def _split_optimizer_state(state: Mapping) -> Tuple[Dict, Dict[str, List[np.ndarray]]]:
    """Separate scalar hyper-state from per-parameter array slot lists."""
    meta: Dict = {}
    slots: Dict[str, List[np.ndarray]] = {}
    for key, value in state.items():
        if isinstance(value, list):
            slots[key] = value
        else:
            meta[key] = value
    return meta, slots


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def capture_training_snapshot(trainer) -> TrainingSnapshot:
    """Copy every piece of a trainer's mutable state into a snapshot.

    Pure read: consumes no RNG draws and mutates nothing, so capturing at an
    epoch boundary cannot perturb the run it protects.
    """
    arrays: Dict[str, np.ndarray] = {}
    manifest: Dict = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "config": jsonable(trainer.config),
        "config_hash": config_hash(trainer.config),
        "graph": {
            "name": trainer.graph.name,
            "num_nodes": int(trainer.graph.num_nodes),
            "num_features": int(trainer.graph.num_features),
        },
        "completed": {k: int(v) for k, v in trainer._completed.items()},
        "rng_state": capture_rng_state(trainer.rng),
        "best_val": float(trainer._best_val),
        "best_readout": trainer._best_readout,
    }
    # Minibatch mode: the anchor sampler's RNG stream and cursor must resume
    # bit-identically alongside the trainer's generator.  The key is optional
    # so snapshots from full-batch runs (including pre-minibatch archives)
    # keep loading; ``None`` records an explicit full-batch run.
    sampler = getattr(trainer, "_sampler", None)
    manifest["minibatch"] = sampler.state_dict() if sampler is not None else None
    # Parallel mode: worker/shard topology plus the shard sampler's stream.
    # Same optionality contract as "minibatch" — absent/None means the run
    # was not data-parallel (pre-parallel archives keep loading).
    runner = getattr(trainer, "_parallel", None)
    manifest["parallel"] = runner.state_manifest() if runner is not None else None

    for name, value in trainer.model.state_dict().items():
        arrays[f"model/{name}"] = value  # state_dict already copies

    optim_meta: Dict[str, Dict] = {}
    for phase, optimizer in trainer._optimizers.items():
        meta, slots = _split_optimizer_state(optimizer.state_dict())
        meta["slot_counts"] = {key: len(values) for key, values in slots.items()}
        optim_meta[phase] = meta
        for key, values in slots.items():
            for i, array in enumerate(values):
                arrays[f"optim/{phase}/{key}/{i}"] = array
    manifest["optimizers"] = optim_meta

    manifest["has_best"] = trainer._best_state is not None
    if trainer._best_state is not None:
        for name, value in trainer._best_state.items():
            arrays[f"best/{name}"] = value.copy()

    manifest["has_frozen_feature"] = trainer._frozen_feature_mask is not None
    if trainer._frozen_feature_mask is not None:
        arrays["frozen/feature_mask"] = trainer._frozen_feature_mask.copy()
    manifest["has_frozen_structure"] = trainer._frozen_structure_values is not None
    if trainer._frozen_structure_values is not None:
        arrays["frozen/structure_values"] = trainer._frozen_structure_values.copy()

    arrays["sens/edge_sensitivity"] = trainer._edge_sensitivity.copy()

    for part, packed in _pack_int_map(trainer._negative_sets).items():
        arrays[f"neg/{part}"] = packed

    manifest["has_pairs"] = trainer.pairs is not None
    if trainer.pairs is not None:
        for side in ("positive", "negative"):
            packed = _pack_int_map(getattr(trainer.pairs, side))
            for part, array in packed.items():
                arrays[f"pairs/{side}/{part}"] = array

    history = trainer.history
    for name in ("phase1_loss", "phase1_val_accuracy", "phase2_loss", "phase2_val_accuracy"):
        arrays[f"hist/{name}"] = np.asarray(getattr(history, name), dtype=np.float64)
    manifest["mask_snapshot_epochs"] = sorted(int(e) for e in history.mask_snapshots)
    for epoch, (feature, structure) in history.mask_snapshots.items():
        arrays[f"msnap/{int(epoch)}/feature"] = feature.copy()
        arrays[f"msnap/{int(epoch)}/structure"] = structure.copy()

    monitors = getattr(trainer, "monitors", None)
    if monitors is not None and hasattr(monitors, "state_dict"):
        manifest["monitor"] = monitors.state_dict()

    return TrainingSnapshot(manifest=manifest, arrays=arrays)


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def restore_training_snapshot(
    trainer, snapshot: TrainingSnapshot, strict_config: bool = True
) -> None:
    """Load a snapshot into a trainer built from the same config and graph.

    ``strict_config=True`` (the default, and what ``--resume`` uses) refuses
    loudly when the snapshot's config hash differs from the trainer's —
    resuming a run under different hyper-parameters silently produces a
    third trajectory that matches neither, which is exactly the failure mode
    checkpointing exists to prevent.
    """
    # Lazy imports: repro.core imports this module, so importing core/graph
    # symbols at module level would create an import cycle.
    from ..core.pairs import PairSets
    from ..core.ses import TrainingHistory
    from ..graph import negative_edge_index

    manifest, arrays = snapshot.manifest, snapshot.arrays
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise CheckpointError(
            f"not a training snapshot (format={manifest.get('format')!r})"
        )
    if int(manifest.get("version", -1)) > SNAPSHOT_VERSION:
        raise CheckpointError(
            f"snapshot version {manifest.get('version')} is newer than "
            f"supported version {SNAPSHOT_VERSION}"
        )
    own_hash = config_hash(trainer.config)
    if manifest.get("config_hash") != own_hash:
        message = (
            f"snapshot config hash {manifest.get('config_hash')} does not match "
            f"trainer config hash {own_hash}; resuming under different "
            "hyper-parameters would not reproduce either run"
        )
        if strict_config:
            raise CheckpointError(message)
    graph_info = manifest.get("graph", {})
    if int(graph_info.get("num_nodes", -1)) != int(trainer.graph.num_nodes):
        raise CheckpointError(
            f"snapshot was taken on a graph with {graph_info.get('num_nodes')} "
            f"nodes; trainer graph has {trainer.graph.num_nodes}"
        )

    trainer.model.load_state_dict(
        {
            key[len("model/"):]: value
            for key, value in arrays.items()
            if key.startswith("model/")
        }
    )

    snapshot_optimizers = manifest.get("optimizers", {})
    for phase in list(trainer._optimizers):
        if phase not in snapshot_optimizers:
            # The snapshot predates this phase (e.g. rolling back from phase 2
            # into a phase-1 snapshot): forget the optimizer so the next
            # access creates a fresh one, as an uninterrupted run would.
            del trainer._optimizers[phase]
    for phase, meta in snapshot_optimizers.items():
        # Load into the *existing* instance when there is one — epoch loops
        # hold no optimizer locals, but identity-stable optimizers keep any
        # external references valid across rollbacks.
        optimizer = trainer._optimizer(phase)
        state = {k: v for k, v in meta.items() if k != "slot_counts"}
        for key, count in meta.get("slot_counts", {}).items():
            state[key] = [arrays[f"optim/{phase}/{key}/{i}"] for i in range(int(count))]
        optimizer.load_state_dict(state)

    restore_rng_state(trainer.rng, manifest["rng_state"])
    sampler_state = manifest.get("minibatch")
    sampler = getattr(trainer, "_sampler", None)
    if sampler_state is not None:
        if sampler is None:
            trainer._configure_minibatch(int(sampler_state["batch_size"]))
            sampler = trainer._sampler
        elif sampler.batch_size != int(sampler_state["batch_size"]):
            raise CheckpointError(
                f"snapshot is from a minibatch run with batch_size="
                f"{sampler_state['batch_size']}; trainer is configured with "
                f"batch_size={sampler.batch_size}"
            )
        sampler.load_state_dict(sampler_state)
    elif sampler is not None:
        raise CheckpointError(
            "snapshot is from a full-batch run; trainer is configured with "
            f"batch_size={sampler.batch_size} — resuming it as a minibatch "
            "run would not reproduce either trajectory"
        )
    parallel_state = manifest.get("parallel")
    runner = getattr(trainer, "_parallel", None)
    if parallel_state is not None:
        workers = int(parallel_state["workers"])
        shards = int(parallel_state["shards"])
        if runner is None:
            trainer.configure_parallel(workers, shards=shards)
            runner = trainer._parallel
        elif runner.config.workers != workers:
            raise CheckpointError(
                f"snapshot is from a parallel run with workers={workers}; "
                f"trainer is configured with workers={runner.config.workers}"
            )
        elif runner.config.shards != shards:
            raise CheckpointError(
                f"snapshot is from a parallel run with shards={shards}; "
                f"trainer is configured with shards={runner.config.shards}"
            )
        runner.sampler.load_state_dict(parallel_state["sampler"])
        # Restored negative pairs / pair sets differ from what the workers
        # hold; force a constants re-ship on the next epoch.
        runner.invalidate_constants()
    elif runner is not None:
        raise CheckpointError(
            "snapshot is from a non-parallel run; trainer is configured with "
            f"workers={runner.config.workers} — resuming it as a parallel "
            "run is only safe from a parallel snapshot"
        )
    # Restored negative/pair sets may not match previously cached subgraphs.
    cache = getattr(trainer, "_batch_cache", None)
    if cache is not None:
        cache.clear()
    trainer._completed = {k: int(v) for k, v in manifest["completed"].items()}
    trainer._best_val = float(manifest["best_val"])
    trainer._best_readout = manifest["best_readout"]
    if manifest.get("has_best"):
        trainer._best_state = {
            key[len("best/"):]: value.copy()
            for key, value in arrays.items()
            if key.startswith("best/")
        }
    else:
        trainer._best_state = None

    trainer._frozen_feature_mask = (
        arrays["frozen/feature_mask"].copy()
        if manifest.get("has_frozen_feature")
        else None
    )
    trainer._frozen_structure_values = (
        arrays["frozen/structure_values"].copy()
        if manifest.get("has_frozen_structure")
        else None
    )
    trainer._edge_sensitivity = arrays["sens/edge_sensitivity"].copy()

    trainer._negative_sets = _unpack_int_map(
        arrays["neg/keys"], arrays["neg/offsets"], arrays["neg/values"]
    )
    trainer.negative_pairs = negative_edge_index(trainer._negative_sets)

    if manifest.get("has_pairs"):
        trainer.pairs = PairSets(
            positive=_unpack_int_map(
                arrays["pairs/positive/keys"],
                arrays["pairs/positive/offsets"],
                arrays["pairs/positive/values"],
            ),
            negative=_unpack_int_map(
                arrays["pairs/negative/keys"],
                arrays["pairs/negative/offsets"],
                arrays["pairs/negative/values"],
            ),
        )
    else:
        trainer.pairs = None

    history = TrainingHistory(
        phase1_loss=[float(x) for x in arrays["hist/phase1_loss"]],
        phase1_val_accuracy=[float(x) for x in arrays["hist/phase1_val_accuracy"]],
        phase2_loss=[float(x) for x in arrays["hist/phase2_loss"]],
        phase2_val_accuracy=[float(x) for x in arrays["hist/phase2_val_accuracy"]],
    )
    for epoch in manifest.get("mask_snapshot_epochs", []):
        history.mask_snapshots[int(epoch)] = (
            arrays[f"msnap/{int(epoch)}/feature"].copy(),
            arrays[f"msnap/{int(epoch)}/structure"].copy(),
        )
    trainer.history = history

    monitors = getattr(trainer, "monitors", None)
    if "monitor" in manifest and monitors is not None and hasattr(monitors, "load_state_dict"):
        monitors.load_state_dict(manifest["monitor"])


# ----------------------------------------------------------------------
# Disk format
# ----------------------------------------------------------------------
def save_snapshot(snapshot: TrainingSnapshot, path: PathLike) -> Path:
    """Write a snapshot atomically with per-array checksums in the manifest."""
    manifest = dict(snapshot.manifest)
    manifest["checksums"] = checksum_manifest(snapshot.arrays)
    blob = np.frombuffer(
        json.dumps(jsonable(manifest), sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    return atomic_savez(path, __manifest__=blob, **snapshot.arrays)


def load_snapshot(path: PathLike) -> TrainingSnapshot:
    """Read and fully verify a snapshot; :class:`CheckpointError` on damage."""
    with open_npz(path, what="training snapshot") as archive:
        if "__manifest__" not in archive.files:
            raise CheckpointError(f"training snapshot at {path} has no manifest")
        try:
            manifest = json.loads(bytes(archive["__manifest__"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"training snapshot at {path} has an unreadable manifest: {error}"
            ) from error
        arrays = {key: archive[key] for key in archive.files if key != "__manifest__"}
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise CheckpointError(
            f"{path} is not a training snapshot (format={manifest.get('format')!r})"
        )
    checksums = manifest.get("checksums")
    if not isinstance(checksums, dict):
        raise CheckpointError(f"training snapshot at {path} has no checksum table")
    verify_checksums(arrays, checksums, path)
    return TrainingSnapshot(manifest=manifest, arrays=arrays)


def write_latest_pointer(directory: PathLike, snapshot_name: str) -> None:
    """Record the most recent snapshot filename (atomic text write)."""
    atomic_write_text(Path(directory) / LATEST_POINTER, snapshot_name + "\n")


def find_latest_snapshot(directory: PathLike) -> Tuple[TrainingSnapshot, Path]:
    """Locate and load the newest *valid* snapshot in ``directory``.

    Tries the ``LATEST`` pointer first, then every ``.npz`` newest-first.
    Corrupt or truncated candidates are skipped (with their failure recorded
    in the final error message if nothing loads), so a crash during the most
    recent save falls back to the previous snapshot instead of aborting.
    A stale ``LATEST`` pointer — one naming a deleted or damaged snapshot —
    falls back the same way but raises a :class:`RuntimeWarning`, because a
    pointer that disagrees with the directory usually means a promotion went
    wrong and hot-reload consumers should know they are serving a fallback.

    Concurrency-safe against a pruner: a snapshot deleted between directory
    listing and ``stat`` (``SESTrainer._prune_checkpoints`` runs while the
    serving watcher polls) is silently dropped from the candidate list
    instead of surfacing as an uncaught ``FileNotFoundError``.
    """
    directory = Path(directory)
    pointer_target: Optional[Path] = None
    pointer = directory / LATEST_POINTER
    try:
        name = pointer.read_text(encoding="utf-8").strip()
    except OSError:
        name = ""
    if name:
        pointer_target = directory / name
    keyed: List[Tuple[float, str, Path]] = []
    for path in directory.glob("*.npz"):
        if path.name.endswith(".tmp"):
            continue
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            continue  # deleted between listing and stat (pruner race)
        keyed.append((mtime, path.name, path))
    keyed.sort(reverse=True)
    candidates: List[Path] = [] if pointer_target is None else [pointer_target]
    for _, _, path in keyed:
        if path not in candidates:
            candidates.append(path)
    failures: List[str] = []
    for path in candidates:
        try:
            snapshot = load_snapshot(path), path
        except CheckpointError as error:
            failures.append(str(error))
            continue
        if failures and pointer_target is not None and path != pointer_target:
            warnings.warn(
                f"LATEST pointer in {directory} names {pointer_target.name!r} "
                f"which failed to load ({failures[0]}); falling back to "
                f"{path.name!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        return snapshot
    detail = ("; ".join(failures)) or "no snapshot files present"
    raise CheckpointError(f"no usable snapshot under {directory}: {detail}")
