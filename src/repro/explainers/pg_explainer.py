"""PGExplainer (Luo et al., NeurIPS 2020).

Trains one shared MLP that maps concatenated endpoint embeddings
``[z_u || z_v]`` to an edge importance logit.  Edge masks are sampled with
the binary-concrete relaxation under an annealed temperature, and the MLP
is optimised so the masked graph preserves the model's predictions on a
set of training nodes — after which *all* instances are explained by a
single forward pass (the multi-instance advantage the paper highlights).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..tensor import MLP, Adam, Tensor, functional as F, gather_rows, no_grad
from ..utils import make_rng
from .base import Explainer, NodeExplanation


class PGExplainer(Explainer):
    """Parameterised, multi-instance edge explainer."""

    name = "PGExplainer"

    def __init__(
        self,
        model,
        graph,
        epochs: int = 30,
        learning_rate: float = 0.01,
        size_weight: float = 0.01,
        entropy_weight: float = 0.1,
        temperature: Tuple[float, float] = (5.0, 1.0),
        num_train_nodes: int = 64,
        train_nodes: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(model, graph)
        self.epochs = epochs
        self.size_weight = size_weight
        self.entropy_weight = entropy_weight
        self.temperature = temperature
        self.rng = make_rng(seed)
        self._trained = False
        hidden = self._node_embeddings().shape[1]
        self.edge_mlp = MLP((2 * hidden, 32, 1), rng=self.rng)
        self.optimizer = Adam(self.edge_mlp.parameters(), lr=learning_rate)
        if train_nodes is not None:
            # Train the mask predictor on the instances it will explain —
            # the PGExplainer protocol (explanations are learned from the
            # population of target instances).
            self.train_nodes = np.asarray(train_nodes, dtype=np.int64)
        else:
            candidates = np.arange(graph.num_nodes)
            take = min(num_train_nodes, len(candidates))
            self.train_nodes = self.rng.choice(candidates, size=take, replace=False)

    def _node_embeddings(self) -> np.ndarray:
        """Hidden representations from the target model (detached)."""
        self.model.eval()
        with no_grad():
            if hasattr(self.model, "forward_with_hidden"):
                hidden, _ = self.model.forward_with_hidden(
                    Tensor(self.graph.features), self.edge_index, self.graph.num_nodes
                )
                return hidden.data
            logits = self._forward(
                Tensor(self.graph.features), self.edge_index, self.graph.num_nodes
            )
            return logits.data

    def _edge_logits(self) -> Tensor:
        embeddings = Tensor(self._node_embeddings())
        src, dst = self.edge_index
        pair_features = F.concatenate(
            [gather_rows(embeddings, src), gather_rows(embeddings, dst)], axis=1
        )
        return self.edge_mlp(pair_features).reshape(-1)

    def _concrete_sample(self, logits: Tensor, temperature: float) -> Tensor:
        """Binary-concrete relaxation of Bernoulli edge masks."""
        uniform = self.rng.uniform(1e-6, 1.0 - 1e-6, size=logits.shape)
        gumbel = np.log(uniform) - np.log(1.0 - uniform)
        return F.sigmoid((logits + Tensor(gumbel)) * (1.0 / temperature))

    def fit(self) -> "PGExplainer":
        """Train the shared edge-mask predictor."""
        graph = self.graph
        targets = self.original_predictions()
        features = Tensor(graph.features)
        node_mask = np.zeros(graph.num_nodes, dtype=bool)
        node_mask[self.train_nodes] = True
        t_start, t_end = self.temperature
        for epoch in range(self.epochs):
            temperature = t_start * (t_end / t_start) ** (epoch / max(1, self.epochs - 1))
            self.optimizer.zero_grad()
            logits = self._edge_logits()
            mask = self._concrete_sample(logits, temperature)
            predictions = self._forward(features, self.edge_index, graph.num_nodes, mask)
            loss = (
                F.cross_entropy(predictions, targets, mask=node_mask)
                + mask.mean() * self.size_weight
                + _entropy(mask) * self.entropy_weight
            )
            loss.backward()
            self.optimizer.step()
        self._trained = True
        return self

    def edge_scores(self, nodes: Optional[Iterable[int]] = None) -> Dict[Tuple[int, int], float]:
        if not self._trained:
            self.fit()
        with no_grad():
            logits = self._edge_logits()
        probabilities = 1.0 / (1.0 + np.exp(-logits.data))
        src, dst = self.edge_index
        return {
            (int(u), int(v)): float(p) for u, v, p in zip(src, dst, probabilities)
        }

    def explain_node(self, node: int) -> NodeExplanation:
        scores = self.edge_scores()
        incident = {
            edge: score
            for edge, score in scores.items()
            if edge[0] == node or edge[1] == node
        }
        return NodeExplanation(node=node, edge_scores=incident or scores)


def _entropy(p: Tensor, eps: float = 1e-9) -> Tensor:
    clipped = p.clip(eps, 1.0 - eps)
    return -(clipped * clipped.log() + (1.0 - clipped) * (1.0 - clipped).log()).mean()
