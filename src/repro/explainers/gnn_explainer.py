"""GNNExplainer (Ying et al., NeurIPS 2019).

For each node, learns a soft mask over the edges of its computational
subgraph and a soft mask over the feature dimensions, maximising the mutual
information between the masked prediction and the model's original
prediction.  Following the reference implementation the objective is::

    -log P(ŷ | masked)  +  a1 * mean(sigma(edge_mask))      (size)
                        +  a2 * H(sigma(edge_mask))         (entropy)
                        +  b1 * mean(sigma(feat_mask)) + b2 * H(sigma(feat_mask))

optimised with Adam per node — the per-instance retraining that makes
GNNExplainer the slowest method in the paper's Table 6.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Adam, Tensor, functional as F
from ..utils import make_rng
from .base import Explainer, NodeExplanation, khop_subgraph


def _bernoulli_entropy(p: Tensor, eps: float = 1e-9) -> Tensor:
    clipped = p.clip(eps, 1.0 - eps)
    return -(clipped * clipped.log() + (1.0 - clipped) * (1.0 - clipped).log()).mean()


class GNNExplainer(Explainer):
    """Per-node edge + feature mask optimisation."""

    name = "GNNExplainer"

    def __init__(
        self,
        model,
        graph,
        epochs: int = 100,
        learning_rate: float = 0.05,
        hops: int = 2,
        edge_size_weight: float = 0.005,
        edge_entropy_weight: float = 0.1,
        feature_size_weight: float = 0.05,
        feature_entropy_weight: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(model, graph)
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.hops = hops
        self.edge_size_weight = edge_size_weight
        self.edge_entropy_weight = edge_entropy_weight
        self.feature_size_weight = feature_size_weight
        self.feature_entropy_weight = feature_entropy_weight
        self.rng = make_rng(seed)

    def explain_node(self, node: int) -> NodeExplanation:
        graph = self.graph
        sub_nodes, sub_edges, center = khop_subgraph(graph, node, self.hops)
        if sub_edges.shape[1] == 0:
            return NodeExplanation(node=node, feature_scores=np.zeros(graph.num_features))
        target = int(self.original_predictions()[node])
        sub_features = graph.features[sub_nodes]
        num_sub = len(sub_nodes)

        edge_logits = Tensor(self.rng.normal(scale=0.1, size=sub_edges.shape[1]), requires_grad=True)
        feature_logits = Tensor(self.rng.normal(scale=0.1, size=graph.num_features), requires_grad=True)
        optimizer = Adam([edge_logits, feature_logits], lr=self.learning_rate)
        self.model.eval()
        base = Tensor(sub_features)
        labels = np.full(num_sub, target)
        center_mask = np.zeros(num_sub, dtype=bool)
        center_mask[center] = True

        for _ in range(self.epochs):
            optimizer.zero_grad()
            edge_mask = F.sigmoid(edge_logits)
            feature_mask = F.sigmoid(feature_logits)
            masked_features = base * feature_mask.reshape(1, -1)
            logits = self._forward(masked_features, sub_edges, num_sub, edge_mask)
            prediction_loss = F.cross_entropy(logits, labels, mask=center_mask)
            loss = (
                prediction_loss
                + edge_mask.mean() * self.edge_size_weight
                + _bernoulli_entropy(edge_mask) * self.edge_entropy_weight
                + feature_mask.mean() * self.feature_size_weight
                + _bernoulli_entropy(feature_mask) * self.feature_entropy_weight
            )
            loss.backward()
            optimizer.step()

        final_edge_mask = 1.0 / (1.0 + np.exp(-edge_logits.data))
        final_feature_mask = 1.0 / (1.0 + np.exp(-feature_logits.data))
        edge_scores = {
            (int(sub_nodes[u]), int(sub_nodes[v])): float(m)
            for u, v, m in zip(sub_edges[0], sub_edges[1], final_edge_mask)
        }
        # Per-node feature saliency: mask weight scaled by feature presence.
        feature_scores = final_feature_mask * np.abs(graph.features[node])
        return NodeExplanation(node=node, edge_scores=edge_scores, feature_scores=feature_scores)
