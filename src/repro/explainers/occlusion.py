"""Occlusion explainer — the classic perturbation baseline.

For a target node, each edge of its computational subgraph is dropped in
turn and the change in the model's predicted probability for the original
class is recorded; the drop is the edge's importance.  The same protocol
applied to feature columns yields feature importances.  Occlusion is exact
(no mask optimisation, no sampling variance) but costs one forward pass
per edge per node — it complements GRAD (one backward, first-order) and
GNNExplainer (optimised soft masks) as a reference point in the ablation
benches.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..tensor import Tensor, no_grad
from .base import Explainer, NodeExplanation, khop_subgraph


class OcclusionExplainer(Explainer):
    """Drop-one-edge / drop-one-feature perturbation importance."""

    name = "Occlusion"

    def __init__(
        self,
        model,
        graph,
        hops: int = 2,
        max_features: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(model, graph)
        self.hops = hops
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)

    def _class_probability(
        self, features: np.ndarray, edge_index: np.ndarray, num_nodes: int,
        center: int, target: int,
    ) -> float:
        self.model.eval()
        with no_grad():
            logits = self._forward(Tensor(features), edge_index, num_nodes).data[center]
        shifted = logits - logits.max()
        probabilities = np.exp(shifted) / np.exp(shifted).sum()
        return float(probabilities[target])

    def explain_node(self, node: int) -> NodeExplanation:
        graph = self.graph
        sub_nodes, sub_edges, center = khop_subgraph(graph, node, self.hops)
        num_sub = len(sub_nodes)
        features = graph.features[sub_nodes]
        target = int(self.original_predictions()[node])
        if sub_edges.shape[1] == 0:
            return NodeExplanation(
                node=node, feature_scores=np.zeros(graph.num_features)
            )
        baseline = self._class_probability(features, sub_edges, num_sub, center, target)

        # --- edges: drop the undirected pair together ----------------------
        edge_scores: Dict = {}
        undirected = {}
        for column in range(sub_edges.shape[1]):
            u, v = int(sub_edges[0, column]), int(sub_edges[1, column])
            undirected.setdefault((min(u, v), max(u, v)), []).append(column)
        for (u, v), columns in undirected.items():
            keep = np.ones(sub_edges.shape[1], dtype=bool)
            keep[columns] = False
            probability = self._class_probability(
                features, sub_edges[:, keep], num_sub, center, target
            )
            drop = max(0.0, baseline - probability)
            for a, b in ((u, v), (v, u)):
                edge_scores[(int(sub_nodes[a]), int(sub_nodes[b]))] = drop

        # --- features: zero one column of the center node ------------------
        feature_scores = np.zeros(graph.num_features)
        active = np.flatnonzero(features[center] != 0)
        if len(active) > self.max_features:
            active = self._rng.choice(active, size=self.max_features, replace=False)
        for feature in active:
            perturbed = features.copy()
            perturbed[center, feature] = 0.0
            probability = self._class_probability(
                perturbed, sub_edges, num_sub, center, target
            )
            feature_scores[feature] = max(0.0, baseline - probability)
        return NodeExplanation(
            node=node, edge_scores=edge_scores, feature_scores=feature_scores
        )


class RandomExplainer(Explainer):
    """Uniform-random importances — the sanity floor every real explainer
    must beat (expected explanation AUC 0.5)."""

    name = "Random"

    def __init__(self, model, graph, seed: int = 0) -> None:
        super().__init__(model, graph)
        self._rng = np.random.default_rng(seed)

    def explain_node(self, node: int) -> NodeExplanation:
        graph = self.graph
        src, dst = self.edge_index
        edge_scores = {
            (int(u), int(v)): float(score)
            for u, v, score in zip(src, dst, self._rng.random(len(src)))
        }
        return NodeExplanation(
            node=node,
            edge_scores=edge_scores,
            feature_scores=self._rng.random(graph.num_features),
        )

    def edge_scores(self, nodes=None) -> Dict:
        return self.explain_node(0).edge_scores
