"""GRAD baseline (Ying et al., 2019 §5): saliency of loss gradients.

Edge importance is the magnitude of the loss gradient with respect to an
all-ones differentiable edge weight vector; feature importance is the
gradient magnitude with respect to the node features.  One backward pass
explains every node at once (gradients of the summed per-node losses), and
a per-node variant is available for instance-level scoring.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..tensor import Tensor, functional as F
from .base import Explainer, NodeExplanation


class GradExplainer(Explainer):
    """Gradient-saliency explainer."""

    name = "GRAD"

    def _saliency(self, node_mask: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        """|d loss / d edge_weight| and |d loss / d X| for selected nodes."""
        graph = self.graph
        self.model.eval()
        features = Tensor(graph.features, requires_grad=True)
        edge_weight = Tensor(np.ones(self.edge_index.shape[1]), requires_grad=True)
        logits = self._forward(features, self.edge_index, graph.num_nodes, edge_weight)
        targets = self.original_predictions()
        loss = F.cross_entropy(logits, targets, mask=node_mask)
        loss.backward()
        return np.abs(edge_weight.grad), np.abs(features.grad)

    def explain_node(self, node: int) -> NodeExplanation:
        mask = np.zeros(self.graph.num_nodes, dtype=bool)
        mask[node] = True
        edge_grad, feature_grad = self._saliency(mask)
        src, dst = self.edge_index
        edge_scores = {
            (int(u), int(v)): float(g) for u, v, g in zip(src, dst, edge_grad)
        }
        return NodeExplanation(
            node=node, edge_scores=edge_scores, feature_scores=feature_grad[node]
        )

    def edge_scores(self, nodes: Optional[Iterable[int]] = None) -> Dict[Tuple[int, int], float]:
        mask = None
        if nodes is not None:
            mask = np.zeros(self.graph.num_nodes, dtype=bool)
            mask[np.fromiter(nodes, dtype=np.int64)] = True
        edge_grad, _ = self._saliency(mask)
        src, dst = self.edge_index
        return {(int(u), int(v)): float(g) for u, v, g in zip(src, dst, edge_grad)}

    def feature_importance(self, nodes: Optional[Iterable[int]] = None) -> np.ndarray:
        mask = None
        if nodes is not None:
            mask = np.zeros(self.graph.num_nodes, dtype=bool)
            mask[np.fromiter(nodes, dtype=np.int64)] = True
        _, feature_grad = self._saliency(mask)
        return feature_grad
