"""Post-hoc explainer baselines and the shared evaluation protocol."""

from .attention import AttentionExplainer
from .base import Explainer, NodeExplanation, khop_subgraph
from .evaluation import candidate_edges_for_nodes, evaluate_edge_auc, sample_motif_nodes
from .gnn_explainer import GNNExplainer
from .grad import GradExplainer
from .graphlime import GraphLIME
from .occlusion import OcclusionExplainer, RandomExplainer
from .pg_explainer import PGExplainer
from .pgm_explainer import PGMExplainer

__all__ = [
    "Explainer",
    "NodeExplanation",
    "khop_subgraph",
    "GradExplainer",
    "AttentionExplainer",
    "GNNExplainer",
    "PGExplainer",
    "PGMExplainer",
    "GraphLIME",
    "OcclusionExplainer",
    "RandomExplainer",
    "evaluate_edge_auc",
    "candidate_edges_for_nodes",
    "sample_motif_nodes",
]
