"""ATT baseline (paper §5.2): GAT attention coefficients as explanations.

Requires a model whose first convolution exposes attention weights
(:class:`~repro.nn.gat.GATConv` or the fused variant store them after every
forward pass).  Edge importance is the head-averaged attention, with
attention from both layers averaged when available.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..tensor import Tensor, no_grad
from .base import Explainer, NodeExplanation


class AttentionExplainer(Explainer):
    """Reads edge importance straight from GAT attention."""

    name = "ATT"

    def _attention_convs(self):
        convs = []
        for attr in ("conv1", "conv2"):
            conv = getattr(self.model, attr, None)
            if conv is not None and hasattr(conv, "edge_attention_scores"):
                convs.append(conv)
        if not convs:
            raise TypeError("ATT explainer requires a GAT-backbone model")
        return convs

    def edge_scores(self, nodes: Optional[Iterable[int]] = None) -> Dict[Tuple[int, int], float]:
        graph = self.graph
        self.model.eval()
        with no_grad():
            self._forward(Tensor(graph.features), self.edge_index, graph.num_nodes)
        merged: Dict[Tuple[int, int], float] = {}
        counts: Dict[Tuple[int, int], int] = {}
        for conv in self._attention_convs():
            attention = conv.edge_attention_scores()
            src, dst = conv.last_edge_index
            for u, v, a in zip(src, dst, attention):
                if u == v:
                    continue  # drop the self-loop entries
                key = (int(u), int(v))
                merged[key] = merged.get(key, 0.0) + float(a)
                counts[key] = counts.get(key, 0) + 1
        return {key: value / counts[key] for key, value in merged.items()}

    def explain_node(self, node: int) -> NodeExplanation:
        scores = self.edge_scores()
        incident = {
            edge: score
            for edge, score in scores.items()
            if edge[0] == node or edge[1] == node
        }
        return NodeExplanation(node=node, edge_scores=incident or scores)
