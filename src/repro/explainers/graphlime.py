"""GraphLIME (Huang et al., TKDE 2022) — HSIC-Lasso feature explanations.

For a target node, its N-hop neighbourhood provides the local samples; the
Hilbert–Schmidt Independence Criterion Lasso selects the feature dimensions
whose (kernelised) variation best explains the variation of the model's
output distribution over those samples.  GraphLIME produces *feature*
importances only, which is exactly the role it plays in the paper's
Fidelity+ comparison (Table 5).
"""

from __future__ import annotations

import numpy as np

from .base import Explainer, NodeExplanation, khop_subgraph


def _center(kernel: np.ndarray) -> np.ndarray:
    n = kernel.shape[0]
    h = np.eye(n) - np.ones((n, n)) / n
    return h @ kernel @ h


def _rbf(values: np.ndarray, gamma: float) -> np.ndarray:
    diff = values[:, None] - values[None, :]
    return np.exp(-gamma * diff * diff)


def _nonnegative_lasso(
    design: np.ndarray, response: np.ndarray, rho: float, iterations: int = 200
) -> np.ndarray:
    """Coordinate descent for min ||y - D beta||^2 + rho |beta|, beta >= 0."""
    num_features = design.shape[1]
    beta = np.zeros(num_features)
    column_norms = (design * design).sum(axis=0)
    residual = response - design @ beta
    for _ in range(iterations):
        max_delta = 0.0
        for j in range(num_features):
            if column_norms[j] == 0:
                continue
            rho_j = design[:, j] @ residual + column_norms[j] * beta[j]
            new_value = max(0.0, (rho_j - rho / 2.0)) / column_norms[j]
            delta = new_value - beta[j]
            if delta != 0.0:
                residual -= design[:, j] * delta
                beta[j] = new_value
                max_delta = max(max_delta, abs(delta))
        if max_delta < 1e-6:
            break
    return beta


class GraphLIME(Explainer):
    """Local nonlinear feature-importance explainer."""

    name = "GraphLIME"

    def __init__(
        self,
        model,
        graph,
        hops: int = 2,
        rho: float = 0.1,
        max_samples: int = 60,
        seed: int = 0,
    ) -> None:
        super().__init__(model, graph)
        self.hops = hops
        self.rho = rho
        self.max_samples = max_samples
        self._rng = np.random.default_rng(seed)
        self._probabilities = None

    def _output_probabilities(self) -> np.ndarray:
        if self._probabilities is None:
            logits = self.original_logits()
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            self._probabilities = exp / exp.sum(axis=1, keepdims=True)
        return self._probabilities

    def explain_node(self, node: int) -> NodeExplanation:
        graph = self.graph
        sub_nodes, _, _ = khop_subgraph(graph, node, self.hops)
        if len(sub_nodes) > self.max_samples:
            keep = self._rng.choice(len(sub_nodes) - 1, self.max_samples - 1, replace=False) + 1
            sub_nodes = np.concatenate([[sub_nodes[0]], sub_nodes[keep]])
        if len(sub_nodes) < 3:
            return NodeExplanation(node=node, feature_scores=np.zeros(graph.num_features))
        samples = graph.features[sub_nodes]
        outputs = self._output_probabilities()[sub_nodes]
        n = len(sub_nodes)

        # Output kernel L (RBF over probability vectors), centred+normalised.
        sq = ((outputs[:, None, :] - outputs[None, :, :]) ** 2).sum(axis=2)
        bandwidth = np.median(sq[sq > 0]) if (sq > 0).any() else 1.0
        output_kernel = _center(np.exp(-sq / max(bandwidth, 1e-9)))
        norm = np.linalg.norm(output_kernel)
        if norm == 0:
            return NodeExplanation(node=node, feature_scores=np.zeros(graph.num_features))
        response = (output_kernel / norm).ravel()

        # Per-feature centred kernels as the design matrix columns.
        active = np.flatnonzero(samples.std(axis=0) > 0)
        design = np.zeros((n * n, len(active)))
        for column, feature in enumerate(active):
            values = samples[:, feature]
            spread = values.std()
            kernel = _center(_rbf(values, gamma=1.0 / (2.0 * spread * spread)))
            kernel_norm = np.linalg.norm(kernel)
            if kernel_norm > 0:
                design[:, column] = (kernel / kernel_norm).ravel()

        beta = _nonnegative_lasso(design, response, self.rho)
        feature_scores = np.zeros(graph.num_features)
        feature_scores[active] = beta
        return NodeExplanation(node=node, feature_scores=feature_scores)
