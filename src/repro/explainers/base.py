"""Common interfaces for post-hoc GNN explainers (paper §5.2 baselines).

Every explainer wraps a *trained* model exposing the GraphEncoder calling
convention ``model(x, edge_index, num_nodes, edge_weight=None) -> logits``
and the graph it was trained on.  Two granularities are supported:

* :meth:`Explainer.explain_node` — per-instance edge/feature importances;
* :meth:`Explainer.edge_scores` — one global directed-edge → importance
  mapping (global methods compute it in one pass; instance-level methods
  assemble it from per-node explanations).

:func:`khop_subgraph` extracts the computational neighbourhood an
instance-level explainer optimises over, matching the GNNExplainer
protocol (the L-hop subgraph of an L-layer GNN fully determines the
prediction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..graph import Graph
from ..tensor import Module, Tensor, no_grad


@dataclass
class NodeExplanation:
    """Importance scores explaining one node's prediction."""

    node: int
    edge_scores: Dict[Tuple[int, int], float] = field(default_factory=dict)
    feature_scores: Optional[np.ndarray] = None

    def ranked_neighbors(self, graph: Graph) -> list:
        """Direct neighbours of :attr:`node` ranked by incident-edge score."""
        scores = []
        for neighbor in graph.neighbors(self.node):
            key_in = (int(neighbor), self.node)
            key_out = (self.node, int(neighbor))
            score = max(self.edge_scores.get(key_in, 0.0), self.edge_scores.get(key_out, 0.0))
            scores.append((int(neighbor), score))
        scores.sort(key=lambda pair: -pair[1])
        return scores


class Explainer:
    """Base class: holds the trained model + graph and caches logits."""

    name = "explainer"

    def __init__(self, model: Module, graph: Graph) -> None:
        self.model = model
        self.graph = graph
        self.edge_index = graph.edge_index()
        self._original_logits: Optional[np.ndarray] = None

    # -- model access ---------------------------------------------------
    def _forward(self, features: Tensor, edge_index: np.ndarray, num_nodes: int,
                 edge_weight: Optional[Tensor] = None) -> Tensor:
        return self.model(features, edge_index, num_nodes, edge_weight=edge_weight)

    def original_logits(self) -> np.ndarray:
        """Logits of the unperturbed graph (cached)."""
        if self._original_logits is None:
            self.model.eval()
            with no_grad():
                logits = self._forward(
                    Tensor(self.graph.features), self.edge_index, self.graph.num_nodes
                )
            self._original_logits = logits.data
        return self._original_logits

    def original_predictions(self) -> np.ndarray:
        return self.original_logits().argmax(axis=1)

    # -- explanation API -------------------------------------------------
    def explain_node(self, node: int) -> NodeExplanation:
        raise NotImplementedError

    def edge_scores(self, nodes: Optional[Iterable[int]] = None) -> Dict[Tuple[int, int], float]:
        """Directed edge → importance; default merges per-node explanations
        by taking the maximum score any evaluated node assigns an edge."""
        if nodes is None:
            nodes = range(self.graph.num_nodes)
        merged: Dict[Tuple[int, int], float] = {}
        for node in nodes:
            explanation = self.explain_node(int(node))
            for edge, score in explanation.edge_scores.items():
                if score > merged.get(edge, -np.inf):
                    merged[edge] = score
        return merged

    def feature_importance(self, nodes: Optional[Iterable[int]] = None) -> np.ndarray:
        """``(N, F)`` matrix of per-node feature importances (zero rows for
        unevaluated nodes)."""
        importance = np.zeros_like(self.graph.features, dtype=np.float64)
        if nodes is None:
            nodes = range(self.graph.num_nodes)
        for node in nodes:
            explanation = self.explain_node(int(node))
            if explanation.feature_scores is not None:
                importance[node] = explanation.feature_scores
        return importance


def khop_subgraph(
    graph: Graph, node: int, hops: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Extract the ``hops``-hop computational subgraph around ``node``.

    Returns ``(sub_nodes, sub_edge_index, center_position)`` where
    ``sub_edge_index`` is relabelled to local ids and ``sub_nodes`` maps
    local → global ids (center included).
    """
    neighborhood = graph.subgraph_nodes(node, hops)
    sub_nodes = np.concatenate([[node], neighborhood]).astype(np.int64)
    position = {int(g): i for i, g in enumerate(sub_nodes)}
    src, dst = graph.edge_index()
    keep = np.isin(src, sub_nodes) & np.isin(dst, sub_nodes)
    local_src = np.array([position[int(u)] for u in src[keep]], dtype=np.int64)
    local_dst = np.array([position[int(v)] for v in dst[keep]], dtype=np.int64)
    return sub_nodes, np.vstack([local_src, local_dst]), 0
