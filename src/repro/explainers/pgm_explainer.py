"""PGMExplainer (Vu & Thai, NeurIPS 2020) — perturbation + dependence test.

For a target node, random feature perturbations are applied to the nodes of
its computational subgraph; the explainer records which perturbations flip
(or significantly dampen) the target's prediction and ranks neighbour
nodes by the strength of the statistical dependence (chi-square test)
between "node was perturbed" and "prediction changed".  Edge scores are
derived as the mean importance of the endpoints, which is how we map the
probabilistic-graphical-model output onto the edge-AUC protocol.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy import stats

from ..tensor import Tensor, no_grad
from ..utils import make_rng
from .base import Explainer, NodeExplanation, khop_subgraph


class PGMExplainer(Explainer):
    """Perturbation-based probabilistic explainer."""

    name = "PGMExplainer"

    def __init__(
        self,
        model,
        graph,
        num_samples: int = 100,
        perturb_probability: float = 0.5,
        hops: int = 2,
        prediction_threshold: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(model, graph)
        self.num_samples = num_samples
        self.perturb_probability = perturb_probability
        self.hops = hops
        self.prediction_threshold = prediction_threshold
        self.rng = make_rng(seed)

    def _target_probability(self, features: np.ndarray, sub_edges, num_sub, center, target) -> float:
        self.model.eval()
        with no_grad():
            logits = self._forward(Tensor(features), sub_edges, num_sub).data[center]
        shifted = logits - logits.max()
        probabilities = np.exp(shifted) / np.exp(shifted).sum()
        return float(probabilities[target])

    def explain_node(self, node: int) -> NodeExplanation:
        graph = self.graph
        sub_nodes, sub_edges, center = khop_subgraph(graph, node, self.hops)
        num_sub = len(sub_nodes)
        if num_sub <= 1 or sub_edges.shape[1] == 0:
            return NodeExplanation(node=node)
        target = int(self.original_predictions()[node])
        base_features = graph.features[sub_nodes]
        base_probability = self._target_probability(
            base_features, sub_edges, num_sub, center, target
        )

        perturbed = np.zeros((self.num_samples, num_sub), dtype=bool)
        changed = np.zeros(self.num_samples, dtype=bool)
        feature_mean = graph.features.mean(axis=0)
        for sample in range(self.num_samples):
            flip = self.rng.random(num_sub) < self.perturb_probability
            flip[center] = False
            perturbed[sample] = flip
            features = base_features.copy()
            # Perturbation: replace a node's features with the dataset mean
            # (the "uninformative" perturbation of the original method).
            features[flip] = feature_mean
            probability = self._target_probability(
                features, sub_edges, num_sub, center, target
            )
            changed[sample] = (base_probability - probability) > self.prediction_threshold

        node_importance = np.zeros(num_sub)
        if changed.any() and not changed.all():
            for local in range(num_sub):
                if local == center:
                    continue
                table = np.array(
                    [
                        [np.sum(perturbed[:, local] & changed), np.sum(perturbed[:, local] & ~changed)],
                        [np.sum(~perturbed[:, local] & changed), np.sum(~perturbed[:, local] & ~changed)],
                    ]
                )
                if table.sum(axis=1).min() == 0 or table.sum(axis=0).min() == 0:
                    continue
                chi2, _, _, _ = stats.chi2_contingency(table, correction=False)
                # Signed dependence: only nodes whose perturbation *causes*
                # prediction change count as important.
                p_change_when_hit = table[0, 0] / max(1, table[0].sum())
                p_change_when_spared = table[1, 0] / max(1, table[1].sum())
                if p_change_when_hit > p_change_when_spared:
                    node_importance[local] = chi2
        node_importance[center] = node_importance.max() if num_sub > 1 else 1.0

        edge_scores: Dict = {}
        for u, v in zip(sub_edges[0], sub_edges[1]):
            score = 0.5 * (node_importance[u] + node_importance[v])
            edge_scores[(int(sub_nodes[u]), int(sub_nodes[v]))] = float(score)
        return NodeExplanation(node=node, edge_scores=edge_scores)
