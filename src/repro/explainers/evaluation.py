"""Shared evaluation protocol for explanation accuracy (Table 4).

Following GNNExplainer, explanation accuracy on the synthetic datasets is
the ROC-AUC of the explainer's edge importances against the ground-truth
motif edges, evaluated over the k-hop neighbourhood edges of the motif
nodes.  :func:`evaluate_edge_auc` implements that protocol for any source
of directed-edge scores (a post-hoc :class:`Explainer` or an SES
:class:`~repro.core.explanations.Explanations` object).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..graph import Graph
from ..metrics import roc_auc_score


def candidate_edges_for_nodes(
    graph: Graph, nodes: Iterable[int], hops: int = 2
) -> np.ndarray:
    """All directed edges inside the ``hops``-hop neighbourhoods of ``nodes``."""
    selected = set()
    for node in nodes:
        reached = set(graph.subgraph_nodes(int(node), hops).tolist())
        reached.add(int(node))
        selected.update(reached)
    src, dst = graph.edge_index()
    keep = np.isin(src, list(selected)) & np.isin(dst, list(selected))
    return np.vstack([src[keep], dst[keep]])


def evaluate_edge_auc(
    edge_scores: Dict[Tuple[int, int], float],
    graph: Graph,
    nodes: Optional[Iterable[int]] = None,
    hops: int = 2,
) -> float:
    """Explanation AUC against ``graph.extra['gt_edge_mask']``."""
    gt = graph.extra.get("gt_edge_mask")
    if not gt:
        raise ValueError(f"graph {graph.name!r} carries no ground-truth edge mask")
    if nodes is None:
        nodes = graph.extra.get("motif_nodes")
        if nodes is None:
            raise ValueError("no motif nodes recorded and none supplied")
    candidates = candidate_edges_for_nodes(graph, nodes, hops=hops)
    labels = np.zeros(candidates.shape[1])
    scores = np.zeros(candidates.shape[1])
    for column in range(candidates.shape[1]):
        key = (int(candidates[0, column]), int(candidates[1, column]))
        labels[column] = 1.0 if key in gt else 0.0
        scores[column] = edge_scores.get(key, 0.0)
    return roc_auc_score(labels, scores)


def sample_motif_nodes(
    graph: Graph, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Random subset of motif nodes for instance-level explainers whose
    per-node cost makes full sweeps expensive (GNNExplainer, PGMExplainer)."""
    motif_nodes = graph.extra.get("motif_nodes")
    if motif_nodes is None:
        raise ValueError("graph carries no motif nodes")
    if count >= len(motif_nodes):
        return motif_nodes
    return rng.choice(motif_nodes, size=count, replace=False)
