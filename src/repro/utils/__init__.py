"""Shared utilities: seeding, timing, logging, validation."""

from .logging import format_table, get_logger
from .seed import capture_rng_state, make_rng, restore_rng_state, split_rng
from .timing import Stopwatch, format_duration, timed
from .units import format_bytes
from .validation import check_labels, check_positive, check_positive_int, check_probability

__all__ = [
    "make_rng",
    "split_rng",
    "capture_rng_state",
    "restore_rng_state",
    "Stopwatch",
    "timed",
    "format_duration",
    "format_bytes",
    "get_logger",
    "format_table",
    "check_probability",
    "check_positive",
    "check_positive_int",
    "check_labels",
]
