"""Deterministic seeding helpers.

Every stochastic component in the reproduction accepts an explicit
``numpy.random.Generator``; these helpers create and split them so
experiments are reproducible end to end.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """Create a generator from an integer seed."""
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def capture_rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """Snapshot a generator's bit-generator state.

    The returned dict is a deep copy of ``rng.bit_generator.state`` — plain
    ints and strings only (PCG64 counters are arbitrary-precision python
    ints), so it survives ``json.dumps``/``json.loads`` losslessly and can
    ride inside a checkpoint manifest.
    """
    return copy.deepcopy(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> np.random.Generator:
    """Restore a state captured by :func:`capture_rng_state` in place.

    After restoration ``rng`` produces the exact draw sequence it would have
    produced from the capture point — the property crash/resume equivalence
    rests on.  The bit-generator kinds must match (a PCG64 state cannot be
    loaded into an MT19937 generator).
    """
    expected = type(rng.bit_generator).__name__
    found = state.get("bit_generator")
    if found != expected:
        raise ValueError(
            f"rng state is for bit generator {found!r}, generator uses {expected!r}"
        )
    rng.bit_generator.state = copy.deepcopy(state)
    return rng
