"""Deterministic seeding helpers.

Every stochastic component in the reproduction accepts an explicit
``numpy.random.Generator``; these helpers create and split them so
experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import List

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """Create a generator from an integer seed."""
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
