"""Wall-clock timing used by the paper's time-consumption experiments.

Tables 6–8 of the paper report explanation-generation and pair-construction
times; :class:`Stopwatch` and :func:`timed` collect the equivalent CPU
wall-clock numbers here.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations."""

    durations: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[label] = self.durations.get(label, 0.0) + elapsed

    def total(self) -> float:
        return sum(self.durations.values())

    def report(self) -> str:
        lines = [f"  {label}: {seconds:.3f}s" for label, seconds in self.durations.items()]
        return "\n".join(lines)


def timed(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def format_duration(seconds: float) -> str:
    """Human format matching the paper's tables ('1 min 13s', '4.3s')."""
    if seconds >= 60:
        minutes = int(seconds // 60)
        rest = round(seconds - 60 * minutes)
        # Carry rounded-up seconds into the minute count so 119.7s renders
        # as "2 min 0s", never "1 min 60s".
        if rest >= 60:
            minutes += 1
            rest = 0
        return f"{minutes} min {rest}s"
    return f"{seconds:.2f}s" if seconds < 10 else f"{seconds:.1f}s"
