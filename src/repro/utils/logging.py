"""Lightweight experiment logging and table formatting.

The experiment harnesses print tables with the same rows/columns the paper
reports; :func:`format_table` renders them as aligned plain text so results
are readable in CI logs and EXPERIMENTS.md.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Sequence

LOGGER_NAME = "repro"


def get_logger(name: str = LOGGER_NAME) -> logging.Logger:
    """Return the package logger, configured once with a stream handler."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    return logger


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned ASCII table."""

    def render(cell) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
