"""Human-readable unit rendering shared by reports, tables and dashboards.

Telemetry payloads keep **raw byte counts** (JSON must stay machine-
diffable); only the human renderings — ``obs-report``, the op-profiler
table, the live dashboard — go through :func:`format_bytes`.  Binary
(IEC) units, because every byte count in this repo is a memory size.
"""

from __future__ import annotations

_BYTE_UNITS = ("B", "KiB", "MiB", "GiB", "TiB", "PiB")


def format_bytes(num_bytes: float, width: int = 0) -> str:
    """Render a byte count as ``412 B`` / ``1.2 KiB`` / ``227.4 MiB``.

    Scales by 1024 into the largest unit with a mantissa < 1024; whole
    bytes print without a decimal point.  ``width`` right-justifies the
    result (0 = no padding) so table columns stay aligned::

        >>> format_bytes(130_393_864)
        '124.4 MiB'
        >>> format_bytes(412, width=10)
        '     412 B'
    """
    value = float(num_bytes)
    sign = "-" if value < 0 else ""
    value = abs(value)
    unit = _BYTE_UNITS[-1]
    for candidate in _BYTE_UNITS:
        if value < 1024.0 or candidate == _BYTE_UNITS[-1]:
            unit = candidate
            break
        value /= 1024.0
    if unit == "B":
        text = f"{sign}{int(round(value))} {unit}"
    else:
        text = f"{sign}{value:.1f} {unit}"
    return text.rjust(width) if width else text
