"""Argument-validation helpers shared across the package."""

from __future__ import annotations

import numpy as np


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer."""
    if int(value) != value or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return int(value)


def check_labels(labels: np.ndarray, num_nodes: int) -> np.ndarray:
    """Validate an integer label vector."""
    labels = np.asarray(labels)
    if labels.shape != (num_nodes,):
        raise ValueError(f"labels must have shape ({num_nodes},), got {labels.shape}")
    if labels.min() < 0:
        raise ValueError("labels must be non-negative")
    return labels.astype(np.int64)
