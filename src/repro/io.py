"""Serialisation: graphs, model checkpoints and explanations.

Everything round-trips through numpy ``.npz`` archives so a trained SES
model or a generated dataset can be saved, shipped and reloaded without
pickle (safe to load from untrusted sources).

* :func:`save_graph` / :func:`load_graph` — a full :class:`~repro.graph.Graph`
  including splits and synthetic ground-truth masks.
* :func:`save_checkpoint` / :func:`load_checkpoint` — any
  :class:`~repro.tensor.Module` parameter state.
* :func:`save_explanations` / :func:`load_explanations` — SES
  :class:`~repro.core.explanations.Explanations`.

Durability (docs/ROBUSTNESS.md): every save streams to a ``.tmp`` sibling
and is fsynced before an atomic rename — the same pattern the telemetry
recorder uses — so a kill mid-save never leaves a corrupt file at the final
path.  Every load converts the opaque ``zipfile.BadZipFile`` / ``KeyError``
that numpy raises on truncated or damaged archives into a
:class:`~repro.resilience.storage.CheckpointError` naming the path and the
failure.  Full *training-state* snapshots (optimizer moments, RNG streams,
epoch counters) live one level up in :mod:`repro.resilience.snapshot`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np
import scipy.sparse as sp

from .core.explanations import Explanations
from .graph import Graph
from .resilience.storage import CheckpointError, atomic_savez, open_npz
from .tensor import Module

PathLike = Union[str, Path]

__all__ = [
    "CheckpointError",
    "save_graph",
    "load_graph",
    "save_checkpoint",
    "load_checkpoint",
    "save_explanations",
    "load_explanations",
]


def save_graph(graph: Graph, path: PathLike) -> None:
    """Write a graph (topology, features, labels, splits, ground truth).

    Crash-safe: the archive is written to a ``.tmp`` sibling, fsynced, then
    atomically renamed into place.
    """
    coo = graph.adjacency.tocoo()
    payload = {
        "num_nodes": np.array(graph.num_nodes),
        "edge_row": coo.row.astype(np.int64),
        "edge_col": coo.col.astype(np.int64),
        "edge_data": coo.data,
        "features": graph.features,
        "name": np.array(graph.name),
    }
    if graph.labels is not None:
        payload["labels"] = graph.labels
    for mask_name in ("train_mask", "val_mask", "test_mask"):
        mask = getattr(graph, mask_name)
        if mask is not None:
            payload[mask_name] = mask
    gt = graph.extra.get("gt_edge_mask")
    # `is not None`, not truthiness: an explicitly-empty mask ({}) means
    # "annotated, zero positive edges" and must round-trip as such.
    if gt is not None:
        edges = np.array(sorted(gt), dtype=np.int64).reshape(-1, 2)
        payload["gt_edges"] = edges
        payload["gt_values"] = np.array(
            [gt[tuple(edge)] for edge in edges], dtype=np.float64
        )
    if "motif_nodes" in graph.extra:
        payload["motif_nodes"] = graph.extra["motif_nodes"]
    atomic_savez(Path(path), **payload)


def load_graph(path: PathLike) -> Graph:
    """Read a graph written by :func:`save_graph`.

    Raises :class:`CheckpointError` on a missing, truncated or corrupted
    archive instead of surfacing ``zipfile.BadZipFile`` / ``KeyError``.
    """
    with open_npz(Path(path), what="graph archive") as archive:
        num_nodes = int(archive["num_nodes"])
        adjacency = sp.coo_matrix(
            (archive["edge_data"], (archive["edge_row"], archive["edge_col"])),
            shape=(num_nodes, num_nodes),
        ).tocsr()
        graph = Graph(
            adjacency=adjacency,
            features=archive["features"],
            labels=archive["labels"] if "labels" in archive else None,
            train_mask=archive["train_mask"] if "train_mask" in archive else None,
            val_mask=archive["val_mask"] if "val_mask" in archive else None,
            test_mask=archive["test_mask"] if "test_mask" in archive else None,
            name=str(archive["name"]),
        )
        if "gt_edges" in archive:
            edges, values = archive["gt_edges"], archive["gt_values"]
            graph.extra["gt_edge_mask"] = {
                (int(u), int(v)): float(w) for (u, v), w in zip(edges, values)
            }
        if "motif_nodes" in archive:
            graph.extra["motif_nodes"] = archive["motif_nodes"]
    return graph


def save_checkpoint(module: Module, path: PathLike) -> None:
    """Write a module's parameters (dotted names become archive keys).

    Crash-safe (tmp → fsync → atomic rename).  For *resumable* training
    state — optimizer moments, RNG streams, epoch counters — use
    :func:`repro.resilience.save_snapshot` instead.
    """
    state = module.state_dict()
    atomic_savez(Path(path), **{k.replace(".", "/"): v for k, v in state.items()})


def load_checkpoint(module: Module, path: PathLike) -> Module:
    """Load parameters written by :func:`save_checkpoint` into ``module``.

    Raises :class:`CheckpointError` on a missing, truncated or corrupted
    archive; parameter-name/shape mismatches keep their specific
    ``KeyError`` / ``ValueError`` from :meth:`Module.load_state_dict`.
    """
    with open_npz(Path(path), what="model checkpoint") as archive:
        state = {key.replace("/", "."): archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module


def save_explanations(explanations: Explanations, path: PathLike) -> None:
    """Write an :class:`Explanations` bundle (crash-safe)."""
    structure = explanations.structure_mask.tocoo()
    atomic_savez(
        Path(path),
        feature_mask=explanations.feature_mask,
        feature_explanation=explanations.feature_explanation,
        structure_row=structure.row.astype(np.int64),
        structure_col=structure.col.astype(np.int64),
        structure_data=structure.data,
        num_nodes=np.array(explanations.feature_mask.shape[0]),
        khop_edge_index=explanations.khop_edge_index,
    )


def load_explanations(path: PathLike) -> Explanations:
    """Read an explanations bundle written by :func:`save_explanations`.

    Raises :class:`CheckpointError` on damaged archives.
    """
    with open_npz(Path(path), what="explanations archive") as archive:
        num_nodes = int(archive["num_nodes"])
        structure = sp.coo_matrix(
            (
                archive["structure_data"],
                (archive["structure_row"], archive["structure_col"]),
            ),
            shape=(num_nodes, num_nodes),
        ).tocsr()
        return Explanations(
            feature_mask=archive["feature_mask"],
            feature_explanation=archive["feature_explanation"],
            structure_mask=structure,
            subgraph_explanation=structure,
            khop_edge_index=archive["khop_edge_index"],
        )
