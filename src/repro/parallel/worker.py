"""Worker side of data-parallel SES training: stateless shard executors.

A worker owns a full model *replica* but no training state: every epoch the
supervisor ships the current phase parameters (and, when they change, the
phase constants — negative pairs for phase 1, frozen-mask inputs for phase
2), and the worker answers per-shard tasks with the shard's loss, gradient
list and telemetry counts.  Statelessness is what makes recovery trivial —
a restarted worker is indistinguishable from the original because there is
nothing to reconstruct beyond the next ``epoch_begin`` message.

Determinism of dropout: a shard's forward draws from a dedicated stream
``default_rng((seed, 0x9A71, phase, epoch, shard))`` derived from *shard*
identity, never worker identity.  Any worker (or the supervisor's
in-process path at ``workers=1``) computing shard ``s`` of epoch ``e``
consumes the identical draws — across restarts, re-sharding and worker
counts (docs/PARALLEL.md).

Protocol (multiprocessing queues, spawn context):

* task queue (per worker): ``("epoch", phase, epoch, params, version,
  constants_or_None)``, ``("shard", phase, epoch, shard_id, anchors,
  pooled_or_None)``, ``("stop",)``.
* event queue (shared): ``("hello", rank, pid, t)``, ``("heartbeat", rank,
  t)``, ``("result", rank, phase, epoch, shard_id, payload)``, ``("error",
  rank, traceback_text)``.

Heartbeats are emitted from the main loop — on idle queue timeouts and at
task start — so a worker hung inside a task (or by ``hang_worker``) goes
silent and only the supervisor's liveness watchdog can catch it.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ses import (
    SESModel,
    phase1_batch_loss,
    phase2_batch_loss,
    phase_parameters,
)
from ..graph.minibatch import extract_phase1_batch, extract_phase2_batch
from ..resilience.faults import WORKER_KINDS, FaultSpec
from ..utils import make_rng

__all__ = ["ShardContext", "shard_dropout_rng", "worker_main"]

# Shard dropout streams derive from (seed, _PARALLEL_STREAM, ...) so they can
# never collide with the trainer's make_rng(seed) stream or the sampler's
# (seed, 0x5E5B) stream.
_PARALLEL_STREAM = 0x9A71

_PHASE_IDS = {"explainable": 0, "predictive": 1}


def shard_dropout_rng(
    seed: int, phase: str, epoch: int, shard_id: int
) -> np.random.Generator:
    """The dropout stream for one (phase, epoch, shard) — worker-independent."""
    return np.random.default_rng(
        (int(seed), _PARALLEL_STREAM, _PHASE_IDS[phase], int(epoch), int(shard_id))
    )


class ShardContext:
    """Model replica + caches for computing per-shard losses and gradients.

    Used verbatim by spawned worker processes *and* by the supervisor's
    in-process path at ``workers=1`` — a single code path is the parity
    argument: there is no "parallel numerics" to diverge from the reference.
    """

    def __init__(self, init: Dict) -> None:
        self.graph = init["graph"]
        self.config = init["config"]
        self.khop_edges = init["khop_edges"]
        self.negative_pairs = init["negative_pairs"]
        self.seed = int(init["seed"])
        # Replica construction draws from a fresh generator seeded exactly
        # like the trainer's, so the initial weights match the supervisor's
        # model; every epoch overwrites the phase parameters anyway.
        self.model = SESModel(
            self.graph.num_features,
            self.graph.num_classes,
            self.config,
            rng=make_rng(self.config.seed),
        )
        self.model.train()
        self._version = -1
        self._features_data: Optional[np.ndarray] = None
        self._edge_weight_data: Optional[np.ndarray] = None
        self._cache: Dict[Tuple, object] = {}

    # ------------------------------------------------------------------
    def begin_epoch(
        self,
        phase: str,
        epoch: int,
        params: Sequence[np.ndarray],
        version: int,
        constants: Optional[Dict],
    ) -> None:
        """Load this epoch's parameters and (when versioned) constants."""
        if version != self._version:
            if constants is None:
                raise RuntimeError(
                    f"constants version {version} requested but none shipped "
                    f"(have {self._version})"
                )
            if phase == "explainable":
                self.negative_pairs = constants["negative_pairs"]
            else:
                self._features_data = constants["features_data"]
                self._edge_weight_data = constants["edge_weight_data"]
            self._version = version
            # Cached subgraphs embed the old constants (negative pairs /
            # pooled tuples from a previous pair build).
            self._cache.clear()
        for param, data in zip(phase_parameters(self.model, phase), params):
            param.data = np.array(data, copy=True)

    # ------------------------------------------------------------------
    def _phase1_batch(self, anchors: np.ndarray):
        key = ("phase1", anchors.tobytes())
        batch = self._cache.get(key)
        if batch is None:
            if len(self._cache) >= 32:
                self._cache.clear()
            batch = extract_phase1_batch(
                self.graph,
                anchors,
                self.khop_edges,
                self.negative_pairs,
                hops=self.model.encoder.num_layers,
            )
            self._cache[key] = batch
        return batch

    def _phase2_batch(self, anchors: np.ndarray, pooled: tuple):
        key = ("phase2", anchors.tobytes())
        batch = self._cache.get(key)
        if batch is None:
            if len(self._cache) >= 32:
                self._cache.clear()
            batch = extract_phase2_batch(
                self.graph, anchors, pooled, hops=self.model.encoder.num_layers
            )
            self._cache[key] = batch
        return batch

    # ------------------------------------------------------------------
    def compute(
        self,
        phase: str,
        epoch: int,
        shard_id: int,
        anchors: np.ndarray,
        pooled: Optional[tuple],
    ) -> Dict:
        """Loss + gradients for one shard; pure given (phase, epoch, shard)."""
        model = self.model
        model.train()
        model.encoder._rng = shard_dropout_rng(self.seed, phase, epoch, shard_id)
        model.zero_grad()
        if phase == "explainable":
            batch = self._phase1_batch(anchors)
            result = phase1_batch_loss(model, self.config, self.graph, batch)
            result.loss.backward()
            payload = {
                "loss": result.loss.item(),
                "grads": self._grads(phase),
                "khop_positions": batch.khop_positions,
                "probe_grad": (
                    result.probe.grad.copy()
                    if result.probe is not None and result.probe.grad is not None
                    else None
                ),
                "feat_below": int((result.feature_mask.data < 0.5).sum()),
                "feat_total": int(result.feature_mask.data.size),
                "struct_below": int((result.structure_mask.data < 0.5).sum()),
                "struct_total": int(max(result.structure_mask.data.size, 1)),
            }
        elif phase == "predictive":
            batch = self._phase2_batch(anchors, pooled)
            result = phase2_batch_loss(
                model,
                self.config,
                self.graph,
                batch,
                self._features_data,
                self._edge_weight_data,
            )
            if result.loss is None:
                # Nothing to optimise on this shard (no train anchors, no
                # pairs): contributes neither gradient nor loss mass.
                payload = {"loss": None, "grads": None}
            else:
                result.loss.backward()
                payload = {"loss": result.loss.item(), "grads": self._grads(phase)}
        else:
            raise ValueError(f"unknown training phase {phase!r}")
        return payload

    def _grads(self, phase: str) -> List[np.ndarray]:
        return [
            param.grad.copy() if param.grad is not None else np.zeros_like(param.data)
            for param in phase_parameters(self.model, phase)
        ]


def _due_fault(
    specs: Sequence[FaultSpec],
    fired: set,
    phase: str,
    epoch: int,
    rank: int,
) -> Optional[FaultSpec]:
    """First unfired worker fault due at this (phase, epoch) for this rank."""
    for index, spec in enumerate(specs):
        if index in fired or spec.kind not in WORKER_KINDS:
            continue
        if spec.rank == rank and spec.matches(phase, epoch):
            fired.add(index)
            return spec
    return None


def worker_main(
    rank: int,
    init: Dict,
    task_queue,
    event_queue,
    heartbeat_interval: float,
) -> None:
    """Entry point of one spawned worker process."""
    try:
        context = ShardContext(init)
        specs: List[FaultSpec] = list(init.get("fault_specs", ()))
        fired: set = set()
        event_queue.put(("hello", rank, os.getpid(), time.time()))
        while True:
            try:
                message = task_queue.get(timeout=heartbeat_interval)
            except queue_module.Empty:
                event_queue.put(("heartbeat", rank, time.time()))
                continue
            kind = message[0]
            if kind == "stop":
                return
            if kind == "epoch":
                _, phase, epoch, params, version, constants = message
                context.begin_epoch(phase, epoch, params, version, constants)
                event_queue.put(("heartbeat", rank, time.time()))
                continue
            _, phase, epoch, shard_id, anchors, pooled = message
            fault = _due_fault(specs, fired, phase, epoch, rank)
            if fault is not None and fault.kind == "kill_worker":
                # Hard exit, no cleanup: the closest stand-in for an OOM kill.
                os._exit(17)
            if fault is not None and fault.kind == "hang_worker":
                # Alive but silent: stop heartbeating and never answer, so
                # only the supervisor's liveness watchdog can detect it.
                while True:
                    time.sleep(3600)
            event_queue.put(("heartbeat", rank, time.time()))
            payload = context.compute(phase, epoch, shard_id, anchors, pooled)
            event_queue.put(("result", rank, phase, epoch, shard_id, payload))
    except KeyboardInterrupt:
        pass
    except Exception:  # noqa: BLE001 - ship the traceback to the supervisor
        try:
            event_queue.put(("error", rank, traceback.format_exc()))
        except Exception:  # queue already torn down; nothing left to report
            pass
