"""The :class:`WorkerSupervisor`: fault-tolerant data-parallel SES training.

Architecture (docs/PARALLEL.md):

* The **shard structure is fixed** at configure time: ``ParallelConfig.shards``
  anchor partitions drawn by a dedicated :class:`AnchorBatchSampler` stream.
  Workers are stateless executors that shards are *assigned* to — the
  assignment never influences the numbers, so the training trajectory is
  bit-identical at any worker count, across worker restarts, and after
  degradation to a smaller pool.
* Per epoch the supervisor ships the phase parameters (plus versioned
  constants) to every worker, fans the shard tasks out round-robin, collects
  per-shard gradients, and reduces them with a fixed-order tree
  (:mod:`repro.parallel.reduce`).  The trainer applies one aggregated
  optimizer step — supervisor-side, so optimizer state never leaves the
  trainer.
* **Worker failure is a first-class event**: workers heartbeat over a
  monitored event queue; the liveness watchdog declares a worker dead when
  its process exits and *hung* when heartbeats stop for longer than
  ``heartbeat_timeout`` (a hung worker is terminated — it cannot be
  trusted).  Failed workers restart with exponential backoff under a
  bounded per-rank budget; a rank that exhausts its budget is dropped and
  its shards re-dispatch deterministically to the survivors.  Only an empty
  pool raises :class:`ParallelTrainingError` — the last resort, analogous
  to ``TrainingDivergedError`` in the recovery policy.

``workers=1`` runs the identical shard computations in-process through the
same :class:`~repro.parallel.worker.ShardContext` code path — it is the
single-process reference that the multi-worker runs are bit-compared
against (``tests/parallel/``).
"""

from __future__ import annotations

import multiprocessing
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.minibatch import AnchorBatchSampler
from ..obs.metrics import default_registry, exponential_buckets
from .reduce import tree_sum, tree_sum_arrays
from .worker import ShardContext, worker_main

__all__ = [
    "EpochOutcome",
    "ParallelConfig",
    "ParallelTrainingError",
    "WorkerSupervisor",
]

# Parallel-runtime telemetry (docs/OBSERVABILITY.md): bound once at import,
# exported as repro_parallel_* through the shared process registry.
_METRICS = default_registry()
_WORKERS_ALIVE = _METRICS.gauge(
    "repro_parallel_workers_alive", "Live worker processes in the pool"
)
_RESTARTS_TOTAL = _METRICS.counter(
    "repro_parallel_restarts_total", "Worker restarts by rank"
)
_FAILURES_TOTAL = _METRICS.counter(
    "repro_parallel_worker_failures_total",
    "Detected worker failures by kind (died / hung)",
)
_HEARTBEAT_AGE = _METRICS.gauge(
    "repro_parallel_heartbeat_age_seconds",
    "Seconds since each worker's last heartbeat",
)
_REDUCE_SECONDS = _METRICS.histogram(
    "repro_parallel_reduce_seconds",
    "Wall-clock seconds per fixed-order gradient tree reduction",
    buckets=exponential_buckets(0.0001, 4.0, 8),
)
_SHARDS_TOTAL = _METRICS.counter(
    "repro_parallel_shards_total", "Completed shard computations by phase"
)


class ParallelTrainingError(RuntimeError):
    """Raised when the worker pool can no longer make progress.

    The parallel analogue of ``TrainingDivergedError``: every rank has
    exhausted its restart budget (or a worker surfaced an unrecoverable
    exception), so the supervisor fails the epoch loudly rather than
    silently stalling.
    """


@dataclass(frozen=True)
class ParallelConfig:
    """Static configuration of one worker pool.

    ``shards`` fixes the reduction structure independently of ``workers`` —
    see the module docstring for why that is the determinism anchor.
    """

    workers: int
    shards: int = 4
    heartbeat_interval: float = 0.2
    heartbeat_timeout: float = 10.0
    max_restarts: int = 2
    restart_backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.shards <= 0:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"({self.heartbeat_timeout} <= {self.heartbeat_interval})"
            )
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff < 0:
            raise ValueError("restart_backoff must be >= 0")


@dataclass
class EpochOutcome:
    """One parallel epoch's aggregated result (shard-order deterministic)."""

    loss: float
    grads: Optional[List[np.ndarray]]
    num_contributing: int
    num_shards: int
    reduce_seconds: float
    probes: List[Tuple[np.ndarray, np.ndarray]] = field(default_factory=list)
    feat_below: int = 0
    feat_total: int = 0
    struct_below: int = 0
    struct_total: int = 0


class _WorkerHandle:
    """Supervisor-side view of one spawned worker process."""

    def __init__(self, rank: int, process, task_queue) -> None:
        self.rank = rank
        self.process = process
        self.task_queue = task_queue
        self.last_seen = time.monotonic()
        self.constants_version = -1


class WorkerSupervisor:
    """Shards anchor batches across workers with deterministic reduction."""

    def __init__(
        self,
        config: ParallelConfig,
        num_anchors: int,
        seed: int,
        init_factory: Callable[[], Dict],
        fault_plan=None,
    ) -> None:
        self.config = config
        self.seed = int(seed)
        self._init_factory = init_factory
        # ceil(N / shards) anchors per shard; the sampler's dedicated RNG
        # stream keeps shard draws out of the trainer's generator exactly as
        # in minibatch mode.  num_shards (== sampler.num_batches) may come
        # out below the requested count on tiny graphs.
        batch_size = -(-int(num_anchors) // config.shards)
        self.sampler = AnchorBatchSampler(num_anchors, batch_size, seed=self.seed)
        self._worker_specs = list(fault_plan.worker_specs()) if fault_plan else []
        self._consumed_specs: set = set()
        self._version = 0
        self._last_phase: Optional[str] = None
        self._inline: Optional[ShardContext] = None
        self._inline_version = -1
        self._context = multiprocessing.get_context("spawn")
        self._event_queue = None
        self._handles: Dict[int, _WorkerHandle] = {}
        self._dead_ranks: set = set()
        self._restarts: Counter = Counter()
        self._started = False
        # Cumulative across pool restarts (stop_workers resets the per-rank
        # budgets, not these) — what CLI summaries, benchmarks and tests read.
        self.total_restarts = 0
        self.total_failures = 0
        self.degraded_ranks: set = set()
        # Wall-clock spent inside failure handling (detect -> replacement
        # dispatched or shards redistributed), summed over all failures.
        self.recovery_seconds = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Fixed shard count (the reduction width)."""
        return self.sampler.num_batches

    @property
    def alive_workers(self) -> int:
        """Workers currently in the pool (1 in in-process mode)."""
        if self.config.workers == 1:
            return 1
        if not self._started:
            return self.config.workers - len(self._dead_ranks)
        return len(self._handles)

    def state_manifest(self) -> Dict:
        """JSON-safe parallel state for the training-snapshot manifest."""
        return {
            "workers": self.config.workers,
            "shards": self.config.shards,
            "sampler": self.sampler.state_dict(),
        }

    def epoch_shards(self) -> List[np.ndarray]:
        """This epoch's anchor shards (deterministic sampler stream)."""
        return self.sampler.epoch_batches()

    def invalidate_constants(self) -> None:
        """Force constants to re-ship (negative resample, snapshot restore)."""
        self._version += 1

    # ------------------------------------------------------------------
    # Epoch execution
    # ------------------------------------------------------------------
    def run_epoch(
        self,
        phase: str,
        epoch: int,
        batches: Sequence[np.ndarray],
        params: List[np.ndarray],
        constants: Dict,
        shard_extras: Optional[Sequence] = None,
    ) -> EpochOutcome:
        """Compute all shards of one epoch and reduce in fixed shard order."""
        if phase != self._last_phase:
            # Phase constants differ (negative pairs vs frozen-mask inputs);
            # bumping the version makes every worker refresh on first touch.
            self._version += 1
            self._last_phase = phase
        tasks = [
            (
                shard_id,
                anchors,
                shard_extras[shard_id] if shard_extras is not None else None,
            )
            for shard_id, anchors in enumerate(batches)
        ]
        if self.config.workers == 1:
            payloads = self._run_epoch_inline(phase, epoch, tasks, params, constants)
        else:
            payloads = self._run_epoch_pool(phase, epoch, tasks, params, constants)
        _SHARDS_TOTAL.inc(len(tasks), phase=phase)
        return self._reduce(phase, payloads)

    def _run_epoch_inline(
        self, phase: str, epoch: int, tasks, params, constants
    ) -> List[Dict]:
        """``workers=1``: the same ShardContext code path, no processes."""
        if self._inline is None:
            self._inline = ShardContext(self._init_factory())
        ship = constants if self._inline_version != self._version else None
        self._inline.begin_epoch(phase, epoch, params, self._version, ship)
        self._inline_version = self._version
        return [
            self._inline.compute(phase, epoch, shard_id, anchors, extra)
            for shard_id, anchors, extra in tasks
        ]

    # ------------------------------------------------------------------
    # Worker-pool path
    # ------------------------------------------------------------------
    def _unconsumed_specs(self) -> List:
        return [
            spec
            for index, spec in enumerate(self._worker_specs)
            if index not in self._consumed_specs
        ]

    def _consume_worker_faults(self, rank: int, phase: str, epoch: int) -> None:
        """Mark worker faults plausibly responsible for this failure as spent.

        The restarted worker receives only still-unconsumed specs, so a
        one-shot ``kill_worker``/``hang_worker`` cannot re-fire after the
        recovery it was injected to exercise.
        """
        for index, spec in enumerate(self._worker_specs):
            if index in self._consumed_specs or spec.rank != rank:
                continue
            if spec.phase in ("any", phase) and spec.epoch <= epoch:
                self._consumed_specs.add(index)

    def _spawn(self, rank: int) -> _WorkerHandle:
        init = dict(self._init_factory())
        init["fault_specs"] = self._unconsumed_specs()
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=worker_main,
            args=(
                rank,
                init,
                task_queue,
                self._event_queue,
                self.config.heartbeat_interval,
            ),
            name=f"repro-parallel-w{rank}",
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(rank, process, task_queue)
        self._handles[rank] = handle
        _WORKERS_ALIVE.set(len(self._handles))
        return handle

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._event_queue = self._context.Queue()
        self._dead_ranks = set()
        self._restarts = Counter()
        for rank in range(self.config.workers):
            self._spawn(rank)
        self._started = True

    def _send_epoch(
        self, handle: _WorkerHandle, phase: str, epoch: int, params, constants
    ) -> None:
        ship = constants if handle.constants_version != self._version else None
        handle.task_queue.put(("epoch", phase, epoch, params, self._version, ship))
        handle.constants_version = self._version

    def _terminate(self, handle: _WorkerHandle) -> None:
        process = handle.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        # The dead worker never drains its queue; without cancel_join_thread
        # the feeder thread would block interpreter exit on the buffered data.
        handle.task_queue.cancel_join_thread()
        handle.task_queue.close()

    def _run_epoch_pool(
        self, phase: str, epoch: int, tasks, params, constants
    ) -> List[Dict]:
        self._ensure_started()
        if not self._handles:
            raise ParallelTrainingError(
                "worker pool is empty: every rank exhausted its restart budget"
            )
        owner: Dict[int, int] = {}
        results: Dict[int, Dict] = {}
        # Round-robin assignment over the live ranks in sorted order —
        # deterministic, though correctness never depends on it.
        ranks = sorted(self._handles)
        for handle in self._handles.values():
            self._send_epoch(handle, phase, epoch, params, constants)
        for index, (shard_id, anchors, extra) in enumerate(tasks):
            rank = ranks[index % len(ranks)]
            owner[shard_id] = rank
            self._handles[rank].task_queue.put(
                ("shard", phase, epoch, shard_id, anchors, extra)
            )
        poll = min(self.config.heartbeat_interval, 0.1)
        while len(results) < len(tasks):
            self._drain_events(phase, epoch, results, timeout=poll)
            now = time.monotonic()
            for rank in list(self._handles):
                handle = self._handles[rank]
                age = now - handle.last_seen
                _HEARTBEAT_AGE.set(age, rank=str(rank))
                if not handle.process.is_alive():
                    self._on_worker_failure(
                        rank, "died", phase, epoch, owner, results,
                        tasks, params, constants,
                    )
                elif age > self.config.heartbeat_timeout:
                    self._on_worker_failure(
                        rank, "hung", phase, epoch, owner, results,
                        tasks, params, constants,
                    )
        return [results[shard_id] for shard_id, _, _ in tasks]

    def _drain_events(
        self, phase: str, epoch: int, results: Dict[int, Dict], timeout: float
    ) -> None:
        """Consume pending worker events; block at most ``timeout`` once."""
        import queue as queue_module

        block = True
        while True:
            try:
                event = self._event_queue.get(timeout=timeout if block else 0)
            except queue_module.Empty:
                return
            block = False
            kind = event[0]
            if kind in ("heartbeat", "hello"):
                rank = event[1]
                handle = self._handles.get(rank)
                if handle is not None:
                    handle.last_seen = time.monotonic()
            elif kind == "result":
                _, rank, result_phase, result_epoch, shard_id, payload = event
                handle = self._handles.get(rank)
                if handle is not None:
                    handle.last_seen = time.monotonic()
                if result_phase == phase and result_epoch == epoch:
                    # Duplicates (a slow worker finishing a re-dispatched
                    # shard) are byte-identical by construction; last write
                    # wins and the count stays correct.
                    results[shard_id] = payload
            elif kind == "error":
                _, rank, trace = event
                raise ParallelTrainingError(
                    f"worker {rank} raised an unrecoverable exception:\n{trace}"
                )

    def _on_worker_failure(
        self,
        rank: int,
        kind: str,
        phase: str,
        epoch: int,
        owner: Dict[int, int],
        results: Dict[int, Dict],
        tasks,
        params,
        constants,
    ) -> None:
        """Dead/hung worker: reclaim shards, restart under budget, or degrade."""
        recovery_start = time.perf_counter()
        try:
            self._handle_worker_failure(
                rank, kind, phase, epoch, owner, results, tasks, params, constants
            )
        finally:
            self.recovery_seconds += time.perf_counter() - recovery_start

    def _handle_worker_failure(
        self,
        rank: int,
        kind: str,
        phase: str,
        epoch: int,
        owner: Dict[int, int],
        results: Dict[int, Dict],
        tasks,
        params,
        constants,
    ) -> None:
        handle = self._handles.pop(rank)
        exitcode = handle.process.exitcode
        self._terminate(handle)
        _FAILURES_TOTAL.inc(kind=kind)
        _WORKERS_ALIVE.set(len(self._handles))
        self.total_failures += 1
        self._consume_worker_faults(rank, phase, epoch)
        orphans = [
            (shard_id, anchors, extra)
            for shard_id, anchors, extra in tasks
            if owner.get(shard_id) == rank and shard_id not in results
        ]
        attempts = self._restarts[rank]
        if attempts < self.config.max_restarts:
            # Exponential backoff before the restart: a crash loop caused by
            # the environment (OOM, bad node) should not spin at full speed.
            delay = self.config.restart_backoff * (2 ** attempts)
            if delay > 0:
                time.sleep(delay)
            self._restarts[rank] += 1
            self.total_restarts += 1
            _RESTARTS_TOTAL.inc(rank=str(rank))
            replacement = self._spawn(rank)
            self._send_epoch(replacement, phase, epoch, params, constants)
            for shard_id, anchors, extra in orphans:
                owner[shard_id] = rank
                replacement.task_queue.put(
                    ("shard", phase, epoch, shard_id, anchors, extra)
                )
            return
        # Budget exhausted: degrade to a smaller pool.  Shard contents and
        # reduction order are worker-independent, so the numbers do not move.
        self._dead_ranks.add(rank)
        self.degraded_ranks.add(rank)
        survivors = sorted(self._handles)
        if not survivors:
            raise ParallelTrainingError(
                f"worker {rank} {kind} (exitcode={exitcode}) with restart "
                f"budget exhausted and no surviving workers — cannot finish "
                f"{phase} epoch {epoch}"
            )
        for index, (shard_id, anchors, extra) in enumerate(orphans):
            new_rank = survivors[index % len(survivors)]
            owner[shard_id] = new_rank
            self._handles[new_rank].task_queue.put(
                ("shard", phase, epoch, shard_id, anchors, extra)
            )

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    def _reduce(self, phase: str, payloads: List[Dict]) -> EpochOutcome:
        """Fixed-order tree reduction of per-shard losses and gradients."""
        start = time.perf_counter()
        contributing = [p for p in payloads if p["loss"] is not None]
        if contributing:
            denominator = float(len(contributing))
            summed = tree_sum_arrays([p["grads"] for p in contributing])
            grads = [g / denominator for g in summed]
            loss = tree_sum([p["loss"] for p in contributing]) / denominator
        else:
            grads = None
            loss = 0.0
        outcome = EpochOutcome(
            loss=float(loss),
            grads=grads,
            num_contributing=len(contributing),
            num_shards=len(payloads),
            reduce_seconds=time.perf_counter() - start,
        )
        if phase == "explainable":
            for payload in payloads:  # shard order == accumulation order
                if payload.get("probe_grad") is not None:
                    outcome.probes.append(
                        (payload["khop_positions"], payload["probe_grad"])
                    )
                outcome.feat_below += payload.get("feat_below", 0)
                outcome.feat_total += payload.get("feat_total", 0)
                outcome.struct_below += payload.get("struct_below", 0)
                outcome.struct_total += payload.get("struct_total", 0)
        _REDUCE_SECONDS.observe(outcome.reduce_seconds)
        return outcome

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop_workers(self) -> None:
        """Stop all worker processes; the next epoch respawns a fresh pool."""
        for handle in self._handles.values():
            try:
                handle.task_queue.put(("stop",))
            except (ValueError, OSError):
                pass
        deadline = time.monotonic() + 3.0
        for handle in self._handles.values():
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            self._terminate(handle)
        self._handles.clear()
        self._dead_ranks = set()
        self._restarts = Counter()
        self._event_queue = None
        self._started = False
        _WORKERS_ALIVE.set(0)
