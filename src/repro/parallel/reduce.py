"""Fixed-order tree reduction: the determinism core of ``repro.parallel``.

Floating-point addition is not associative, so "sum the shard gradients"
only reproduces bit-for-bit if the *shape* of the reduction is pinned.
:func:`tree_reduce` combines items pairwise level by level; the combination
tree depends only on ``len(items)`` — never on which worker produced a
shard, in what order results arrived, or how many workers are alive.  With
the shard structure itself fixed (``ParallelConfig.shards``), every run —
any worker count, after any number of restarts, after degradation to a
smaller pool — performs the identical sequence of float additions.

A left fold (``sum``) would be equally deterministic; the tree is preferred
because it matches how a real allreduce composes and keeps the rounding
error growth logarithmic instead of linear in the shard count.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

import numpy as np

__all__ = ["tree_reduce", "tree_sum", "tree_sum_arrays"]

T = TypeVar("T")


def tree_reduce(items: Sequence[T], combine: Callable[[T, T], T]) -> T:
    """Reduce ``items`` pairwise in a fixed-shape binary tree.

    Level by level, neighbours ``(0,1), (2,3), ...`` are combined; an odd
    trailing item is carried up unchanged.  The call sequence is a pure
    function of ``len(items)``, so the result is bit-stable for any
    non-associative ``combine`` (float addition included).
    """
    if not items:
        raise ValueError("tree_reduce needs at least one item")
    level = list(items)
    while len(level) > 1:
        reduced: List[T] = []
        for index in range(0, len(level) - 1, 2):
            reduced.append(combine(level[index], level[index + 1]))
        if len(level) % 2:
            reduced.append(level[-1])
        level = reduced
    return level[0]


def tree_sum(values: Sequence[float]) -> float:
    """Fixed-order scalar sum (see :func:`tree_reduce`)."""
    return float(tree_reduce([float(v) for v in values], lambda a, b: a + b))


def tree_sum_arrays(
    grad_lists: Sequence[Sequence[np.ndarray]],
) -> List[np.ndarray]:
    """Fixed-order elementwise sum of per-shard gradient lists.

    Each item is one shard's ``[grad_per_parameter, ...]`` list (all lists
    the same length/shapes); the result is the tree-ordered elementwise sum.
    """
    return list(
        tree_reduce(
            [list(grads) for grads in grad_lists],
            lambda a, b: [x + y for x, y in zip(a, b)],
        )
    )
