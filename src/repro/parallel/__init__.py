"""Fault-tolerant data-parallel SES training (docs/PARALLEL.md).

Shards anchor batches across ``multiprocessing`` workers, reduces gradients
in a fixed-order tree so results are bit-identical to single-process
training at any worker count, and treats worker failure as a first-class
event: heartbeats, a liveness watchdog, bounded restarts with backoff, and
deterministic degradation to a smaller pool.
"""

from .reduce import tree_reduce, tree_sum, tree_sum_arrays
from .supervisor import (
    EpochOutcome,
    ParallelConfig,
    ParallelTrainingError,
    WorkerSupervisor,
)
from .worker import ShardContext, shard_dropout_rng, worker_main

__all__ = [
    "EpochOutcome",
    "ParallelConfig",
    "ParallelTrainingError",
    "ShardContext",
    "WorkerSupervisor",
    "shard_dropout_rng",
    "tree_reduce",
    "tree_sum",
    "tree_sum_arrays",
    "worker_main",
]
