"""``python -m repro run-ses`` — one resumable SES training run.

The fault-tolerant front door to :class:`~repro.core.ses.SESTrainer`
(docs/ROBUSTNESS.md): unlike the table/figure experiment harnesses, this
command trains a single configuration and exposes the checkpoint/resume
runtime directly:

* ``--checkpoint-every N`` writes a full-state snapshot every N completed
  epochs (atomic, checksummed) into ``--checkpoint-dir``;
* ``--resume [PATH]`` continues an interrupted run — from an explicit
  snapshot file, a checkpoint directory, or (with no argument) the default
  checkpoint directory for this dataset/backbone/seed.  The resumed run
  reproduces the uninterrupted one bit-for-bit;
* ``--recover`` enables the NaN-recovery policy (rollback + LR backoff +
  bounded retries; ``--recover raise`` aborts instead of degrading);
* ``--workers N`` shards each epoch across N supervised worker processes
  with heartbeats, automatic restarts and deterministic degradation; the
  trajectory is bit-identical at any worker count (docs/PARALLEL.md);
* ``--faults SPEC`` injects faults for harness testing, e.g.
  ``crash@explainable:30`` or ``nan@predictive:2:matmul`` (grammar in
  docs/ROBUSTNESS.md; also honoured from ``REPRO_FAULTS``).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path


def default_checkpoint_dir(dataset: str, backbone: str, seed: int) -> Path:
    """Where ``--checkpoint-every`` writes when no directory is given."""
    return Path("results") / "checkpoints" / f"{dataset}-{backbone}-seed{seed}"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro run-ses",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--dataset", default="cora")
    parser.add_argument("--backbone", default="gcn")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier (0.15 = smoke-test size)")
    parser.add_argument("--explainable-epochs", type=int, default=None)
    parser.add_argument("--predictive-epochs", type=int, default=None)
    parser.add_argument("--hidden", type=int, default=None,
                        help="encoder hidden width (default: fast_config's)")
    parser.add_argument("--batch-size", type=int, default=None, metavar="B",
                        help="train with neighbor-sampled anchor minibatches "
                             "of B nodes (default: full-batch; B >= num_nodes "
                             "reproduces full-batch bit-for-bit)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="data-parallel training across N worker "
                             "processes (bit-identical to --workers 1 at any "
                             "N; mutually exclusive with --batch-size — see "
                             "docs/PARALLEL.md)")
    parser.add_argument("--shards", type=int, default=None, metavar="S",
                        help="anchor shards per epoch (default 4); fixes the "
                             "reduction structure independently of --workers")
    parser.add_argument("--heartbeat-timeout", type=float, default=None,
                        metavar="SEC",
                        help="seconds of worker silence before the liveness "
                             "watchdog declares it hung (default 10)")
    parser.add_argument("--max-worker-restarts", type=int, default=None,
                        metavar="K",
                        help="restart budget per worker rank before the pool "
                             "degrades to fewer workers (default 2)")
    parser.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                        help="write a full-state snapshot every N epochs")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="snapshot directory (default: results/checkpoints/<run>)")
    parser.add_argument("--checkpoint-keep", type=int, default=3,
                        help="newest snapshots kept on disk (0 = keep all)")
    parser.add_argument("--resume", nargs="?", const="auto", default=None,
                        metavar="PATH",
                        help="resume from a snapshot file or directory; bare "
                             "--resume uses the default checkpoint directory")
    parser.add_argument("--recover", nargs="?", const="1", default=None,
                        choices=["1", "raise"],
                        help="enable NaN rollback/backoff recovery "
                             "(`raise` aborts on exhaustion instead of degrading)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault-injection plan, e.g. crash@explainable:30 "
                             "(overrides REPRO_FAULTS)")
    parser.add_argument("--telemetry", action="store_true",
                        help="write a JSONL run record under results/runs/")
    parser.add_argument("--live", action="store_true",
                        help="draw an in-place ANSI training dashboard on "
                             "stderr (uses an in-memory run record unless "
                             "--telemetry is also given)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.telemetry:
        os.environ["REPRO_TELEMETRY"] = "1"

    # Imports after arg parsing so `--help` stays instant.
    from .core import SESTrainer, fast_config
    from .datasets import load_dataset
    from .graph import classification_split
    from .resilience import FaultPlan, RecoveryPolicy

    overrides = {"seed": args.seed}
    if args.explainable_epochs is not None:
        overrides["explainable_epochs"] = args.explainable_epochs
    if args.predictive_epochs is not None:
        overrides["predictive_epochs"] = args.predictive_epochs
    if args.hidden is not None:
        overrides["hidden_features"] = args.hidden
        overrides["mask_mlp_hidden"] = args.hidden
    config = fast_config(args.backbone, **overrides)

    graph = classification_split(
        load_dataset(args.dataset, scale=args.scale, seed=args.seed), seed=args.seed
    )

    recovery = None
    if args.recover is not None:
        recovery = RecoveryPolicy(
            on_exhaustion="raise" if args.recover == "raise" else "degrade"
        )
    faults = FaultPlan.parse(args.faults) if args.faults is not None else None

    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and (args.checkpoint_every > 0 or args.resume == "auto"):
        checkpoint_dir = default_checkpoint_dir(args.dataset, args.backbone, args.seed)
    resume_from = None
    if args.resume is not None:
        resume_from = Path(checkpoint_dir if args.resume == "auto" else args.resume)

    recorder = None
    dashboard = None
    if args.live:
        # The dashboard is a recorder listener, so --live needs a real
        # RunRecorder even with telemetry off — an in-memory one then: the
        # events drive the TTY and are discarded.
        import io

        from .obs.dashboard import LiveDashboard
        from .obs.recorder import RunRecorder, default_recorder, telemetry_enabled

        name = f"{args.dataset}-{args.backbone}-seed{args.seed}"
        if telemetry_enabled():
            recorder = default_recorder(name)
        else:
            recorder = RunRecorder(run_id=name, path=io.StringIO())
        dashboard = LiveDashboard().attach(recorder)

    trainer = SESTrainer(
        graph, config, recorder=recorder, recovery=recovery, faults=faults
    )
    if args.workers is not None:
        if args.batch_size is not None:
            parser_error = build_parser()
            parser_error.error("--workers and --batch-size are mutually exclusive")
        trainer.configure_parallel(
            args.workers,
            shards=args.shards,
            heartbeat_timeout=args.heartbeat_timeout,
            max_restarts=args.max_worker_restarts,
        )
    try:
        result = trainer.fit(
            resume_from=resume_from,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            checkpoint_keep=args.checkpoint_keep,
            batch_size=args.batch_size,
        )
    finally:
        if dashboard is not None:
            dashboard.close()
        if recorder is not None:
            recorder.close()

    completed = trainer._completed
    print(f"dataset={graph.name} backbone={config.backbone} seed={config.seed}")
    if trainer.batch_size is not None:
        print(f"minibatch: batch_size={trainer.batch_size} "
              f"({trainer._sampler.num_batches} batches/epoch)")
    if trainer.workers is not None:
        runner = trainer._parallel
        print(f"parallel: workers={runner.config.workers} "
              f"shards={runner.num_shards} restarts={runner.total_restarts}")
    print(f"epochs: explainable={completed['explainable']} "
          f"predictive={completed['predictive']}")
    if trainer.recovery is not None and trainer.recovery.total_rollbacks:
        print(f"recovery: {trainer.recovery.total_rollbacks} rollback(s), "
              f"degraded={sorted(trainer.recovery.degraded_phases) or 'none'}")
    print(f"test accuracy: {result.test_accuracy:.4f}")
    print(f"val accuracy:  {result.val_accuracy:.4f}")
    print(f"readout: {trainer.active_readout()}  "
          f"training time: {result.training_time:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
