"""Benchmark: regenerate paper Table 4 (see repro.experiments.table4)."""

from repro.experiments import table4

from conftest import run_once


def test_table4(benchmark, profile):
    result = run_once(benchmark, lambda: table4.run(profile))
    assert result.rows
