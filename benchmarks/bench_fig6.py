"""Benchmark: regenerate paper Figure 6 (see repro.experiments.fig6)."""

from repro.experiments import fig6

from conftest import run_once


def test_fig6(benchmark, profile):
    result = run_once(benchmark, lambda: fig6.run(profile))
    assert result.rows
