"""Overhead benchmark for the always-on metrics layer and the live dashboard.

Trains the same small SES configuration three times in one process —

* ``metrics_off``  — the registry kill switch flipped off (every update a
  single flag check; the floor ``metrics_on`` is compared against);
* ``metrics_on``   — the shipped default (always-on counters, gauges and
  histograms updated by the trainer, CSR cache and resilience runtime);
* ``telemetry``    — metrics on plus an in-memory run record and the
  default monitors (the floor ``metrics_live`` is compared against: a
  recorder activates monitors regardless of the dashboard);
* ``metrics_live`` — ``telemetry`` *plus* a
  :class:`~repro.obs.LiveDashboard` listening on the recorder, rendering
  to a discarded non-TTY stream (the ``run-ses --live`` configuration).

The headline numbers are median epoch seconds per mode (measured by the
benchmark's own clock, *outside* the instrumented path) and the
percentage overheads ``metrics_on`` vs ``metrics_off`` and
``metrics_live`` vs ``telemetry`` — each comparison isolates exactly one
feature.  The acceptance bar from docs/OBSERVABILITY.md is **< 5%
epoch-time overhead** per feature; the script exits non-zero past it.
Repeats are interleaved across modes (off/on/telemetry/live, repeated) so
machine drift hits every mode equally.

Writes ``results/BENCH_obs_metrics.json`` in the ``{benchmarks: [{name,
stats}]}`` shape ``python -m repro obs-diff`` consumes (epoch seconds are
lower-is-better, gateable with ``--max-slowdown``).

Run with::

    PYTHONPATH=src python benchmarks/bench_obs_metrics.py
"""

from __future__ import annotations

import io
import json
import os
import sys
import time

BENCH_JSON = os.path.join("results", "BENCH_obs_metrics.json")

DATASET = "cora"
SCALE = 0.5
SEED = 0
EPOCHS = (8, 4)
REPEATS = 3
MAX_OVERHEAD_PCT = 5.0


def train_once(mode):
    """One SES fit under ``mode``; returns (seconds, completed epochs)."""
    from repro.core import SESTrainer, fast_config
    from repro.datasets import load_dataset
    from repro.graph import classification_split
    from repro.obs import (
        LiveDashboard,
        RunRecorder,
        default_monitors,
        default_registry,
    )
    from repro.tensor import clear_layout_cache

    registry = default_registry()
    registry.reset()
    registry.set_enabled(mode != "metrics_off")
    clear_layout_cache()

    graph = classification_split(
        load_dataset(DATASET, scale=SCALE, seed=SEED), seed=SEED
    )
    config = fast_config(
        "gcn",
        explainable_epochs=EPOCHS[0],
        predictive_epochs=EPOCHS[1],
        seed=SEED,
    )
    recorder = None
    dashboard = None
    if mode in ("telemetry", "metrics_live"):
        recorder = RunRecorder(run_id=f"bench-{mode}", path=io.StringIO())
        if mode == "metrics_live":
            dashboard = LiveDashboard(
                stream=io.StringIO(), registry=registry, force_tty=False
            ).attach(recorder)
    trainer = (
        SESTrainer(graph, config)
        if recorder is None
        else SESTrainer(
            graph, config, recorder=recorder, monitors=default_monitors(recorder)
        )
    )
    start = time.perf_counter()
    trainer.fit()
    seconds = time.perf_counter() - start
    if dashboard is not None:
        dashboard.close()
    registry.set_enabled(True)
    return seconds, sum(EPOCHS)


# (compared mode, its floor): each pair isolates exactly one feature.
COMPARISONS = (("metrics_on", "metrics_off"), ("metrics_live", "telemetry"))


def main(argv=None) -> int:
    modes = ("metrics_off", "metrics_on", "telemetry", "metrics_live")
    train_once("metrics_off")  # warm-up: caches, imports, allocator pools
    times = {mode: [] for mode in modes}
    for _ in range(REPEATS):
        for mode in modes:  # interleaved so drift hits every mode equally
            seconds, epochs = train_once(mode)
            times[mode].append(seconds / epochs)
    epoch_seconds = {}
    benchmarks = []
    for mode in modes:
        # Median-of-repeats: one GC pause or page-cache miss should not
        # decide a percentage comparison between sub-second numbers.
        samples = sorted(times[mode])
        epoch_seconds[mode] = samples[len(samples) // 2]
        benchmarks.append(
            {
                "name": f"epoch_seconds_{mode}",
                "stats": {
                    "mean": epoch_seconds[mode],
                    "min": samples[0],
                    "max": samples[-1],
                    "repeats": REPEATS,
                },
            }
        )
        print(f"{mode:>14}: {epoch_seconds[mode] * 1e3:.2f} ms/epoch (median of {REPEATS})")

    summary = {
        "dataset": DATASET,
        "scale": SCALE,
        "seed": SEED,
        "epochs": list(EPOCHS),
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }
    failed = False
    for mode, floor_mode in COMPARISONS:
        floor = epoch_seconds[floor_mode]
        overhead = 100.0 * (epoch_seconds[mode] - floor) / floor
        summary[f"overhead_pct_{mode}"] = round(overhead, 2)
        verdict = "ok" if overhead < MAX_OVERHEAD_PCT else "FAIL"
        print(f"{mode:>14}: {overhead:+.2f}% vs {floor_mode} [{verdict}]")
        if overhead >= MAX_OVERHEAD_PCT:
            failed = True

    os.makedirs(os.path.dirname(BENCH_JSON), exist_ok=True)
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(
            {"suite": "bench_obs_metrics", "benchmarks": benchmarks, "summary": summary},
            handle,
            indent=2,
        )
    print(f"wrote {BENCH_JSON}")
    if failed:
        print(f"FAIL: metrics overhead exceeds {MAX_OVERHEAD_PCT:g}% of epoch time")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
