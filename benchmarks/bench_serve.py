"""Threaded load benchmark for the explanation-serving layer (repro.serve).

Trains one miniature SES model, snapshots it, loads it into a
:class:`~repro.serve.ServingState` behind a real ``ThreadingHTTPServer``
on a loopback port, then hammers it with ``NUM_CLIENTS`` keep-alive client
threads for ``DURATION`` seconds per endpoint mix:

* ``predict``   — model forward results straight out of the state;
* ``explain``   — LRU-cached explanation payloads (steady-state: all hits);
* ``mixed``     — the 3:2:1 predict/explain/neighbors blend plus periodic
  ``/healthz`` probes, approximating a dashboard-driven consumer.

Headline numbers are per-request latency percentiles (p50/p99, measured
client-side around each ``GET``) and aggregate request throughput.  Any
non-2xx response or dropped connection counts as an error and fails the
run — under load the server's contract is *every* request answered.

Writes ``results/BENCH_serve.json`` in the ``{benchmarks: [{name, stats}]}``
shape ``python -m repro obs-diff`` consumes.  Latency seconds are
lower-is-better and live in ``benchmarks``; higher-is-better throughput
and the error count live in ``summary`` so ``--max-slowdown`` gating stays
directionally correct.

Run with::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import tempfile
import threading
import time

BENCH_JSON = os.path.join("results", "BENCH_serve.json")

DATASET = "cora"
SCALE = 0.3
SEED = 0
EPOCHS = (4, 3)
NUM_CLIENTS = 8
DURATION = 2.0  # seconds of sustained load per scenario
WARMUP_REQUESTS = 50


def build_server(tmpdir):
    """Train, snapshot, and serve; returns (server, thread, state)."""
    from repro.core import SESTrainer, fast_config
    from repro.datasets import load_dataset
    from repro.graph import classification_split
    from repro.obs.metrics import MetricsRegistry
    from repro.serve import StateHolder, create_server, load_serving_state

    graph = classification_split(
        load_dataset(DATASET, scale=SCALE, seed=SEED), seed=SEED
    )
    config = fast_config(
        "gcn",
        explainable_epochs=EPOCHS[0],
        predictive_epochs=EPOCHS[1],
        seed=SEED,
    )
    trainer = SESTrainer(graph, config)
    trainer.fit(checkpoint_every=EPOCHS[1], checkpoint_dir=tmpdir)

    registry = MetricsRegistry(enabled=True)
    state = load_serving_state(
        tmpdir, dataset=DATASET, cache_size=graph.num_nodes, registry=registry
    )
    holder = StateHolder(state, registry=registry)
    server = create_server(holder, port=0, registry=registry)
    thread = server.serve_in_thread()
    return server, thread, state


def percentile(sorted_samples, q):
    if not sorted_samples:
        return 0.0
    index = min(len(sorted_samples) - 1, int(round(q * (len(sorted_samples) - 1))))
    return sorted_samples[index]


def run_scenario(port, paths, duration):
    """Hammer ``paths`` from NUM_CLIENTS threads; returns (latencies, errors)."""
    latencies = [[] for _ in range(NUM_CLIENTS)]
    errors = []
    start_barrier = threading.Barrier(NUM_CLIENTS)
    deadline = [0.0]  # set post-barrier by the first thread through

    def client(index):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15.0)
        try:
            start_barrier.wait()
            if index == 0:
                deadline[0] = time.monotonic() + duration
            while deadline[0] == 0.0:
                time.sleep(0.0005)
            n = 0
            while time.monotonic() < deadline[0]:
                path = paths[(index + n) % len(paths)]
                begin = time.perf_counter()
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                latencies[index].append(time.perf_counter() - begin)
                if not 200 <= response.status < 300:
                    errors.append((path, response.status))
                n += 1
        except Exception as error:  # noqa: BLE001 - dropped connection == failure
            errors.append((f"client {index}", repr(error)))
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(NUM_CLIENTS)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=duration + 30)
    wall = time.perf_counter() - wall_start
    flat = sorted(lat for per_client in latencies for lat in per_client)
    return flat, errors, wall


def main(argv=None) -> int:
    print(
        f"training {DATASET} scale={SCALE} ({EPOCHS[0]}+{EPOCHS[1]} epochs) "
        f"and starting server..."
    )
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmpdir:
        server, thread, state = build_server(tmpdir)
        num_nodes = state.num_nodes
        scenarios = {
            "predict": [f"/predict/{n % num_nodes}" for n in range(64)],
            "explain": [f"/explain/{n % num_nodes}" for n in range(64)],
            "mixed": [
                p
                for n in range(32)
                for p in (
                    f"/predict/{(3 * n) % num_nodes}",
                    f"/predict/{(3 * n + 1) % num_nodes}",
                    f"/predict/{(3 * n + 2) % num_nodes}",
                    f"/explain/{(2 * n) % num_nodes}",
                    f"/explain/{(2 * n + 1) % num_nodes}",
                    f"/neighbors/{n % num_nodes}",
                )
            ]
            + ["/healthz"],
        }
        benchmarks = []
        summary = {
            "dataset": DATASET,
            "scale": SCALE,
            "seed": SEED,
            "num_nodes": num_nodes,
            "num_clients": NUM_CLIENTS,
            "duration_seconds": DURATION,
            "error_count": 0,
        }
        failed = False
        try:
            # Warm the explanation cache and the thread pool off the clock.
            warm = http.client.HTTPConnection("127.0.0.1", server.port, timeout=15.0)
            for n in range(WARMUP_REQUESTS):
                warm.request("GET", f"/explain/{n % num_nodes}")
                warm.getresponse().read()
            warm.close()

            for name, paths in scenarios.items():
                flat, errors, wall = run_scenario(server.port, paths, DURATION)
                requests = len(flat)
                throughput = requests / wall if wall > 0 else 0.0
                stats = {
                    "mean": sum(flat) / requests if requests else 0.0,
                    "p50": percentile(flat, 0.50),
                    "p99": percentile(flat, 0.99),
                    "min": flat[0] if flat else 0.0,
                    "max": flat[-1] if flat else 0.0,
                    "requests": requests,
                }
                benchmarks.append({"name": f"latency_seconds_{name}", "stats": stats})
                summary[f"requests_per_second_{name}"] = round(throughput, 1)
                summary["error_count"] += len(errors)
                print(
                    f"{name:>8}: {requests:6d} requests | "
                    f"p50 {stats['p50'] * 1e3:7.3f} ms | "
                    f"p99 {stats['p99'] * 1e3:7.3f} ms | "
                    f"{throughput:8.1f} req/s | errors {len(errors)}"
                )
                if errors:
                    failed = True
                    for detail in errors[:5]:
                        print(f"          error: {detail}")
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()

    os.makedirs(os.path.dirname(BENCH_JSON), exist_ok=True)
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(
            {"suite": "bench_serve", "benchmarks": benchmarks, "summary": summary},
            handle,
            indent=2,
        )
    print(f"wrote {BENCH_JSON}")
    if failed:
        print(f"FAIL: {summary['error_count']} request(s) errored under load")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
