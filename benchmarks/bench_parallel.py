"""Data-parallel training benchmark: epoch-time scaling and recovery cost.

Trains SES on Cora three times — 1, 2 and 4 workers — with the identical
shard structure (``workers=1`` runs the same sharded algorithm in-process),
recording mean epoch wall-time per worker count, then once more at 2
workers with a ``kill_worker`` fault injected mid-run to price a full
worker recovery (detect → restart → re-ship → re-dispatch).

Determinism is asserted, not assumed: every run must produce the same
final-epoch losses, or the benchmark fails — a perf harness that silently
benchmarks a *different* trajectory measures nothing.

Writes ``results/BENCH_parallel.json`` in the ``{benchmarks: [{name,
stats}]}`` shape ``python -m repro obs-diff`` consumes (epoch seconds and
recovery overhead; lower is better).

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import json
import os
import sys
import time

BENCH_JSON = os.path.join("results", "BENCH_parallel.json")

DATASET = "cora"
SCALE = 0.5
SEED = 0
EPOCHS = (6, 3)  # explainable, predictive
WORKER_COUNTS = (1, 2, 4)
KILL_SPEC = "kill_worker@explainable:3:1"


def train_once(workers, faults=None):
    """One timed SES fit; returns (trainer, result, seconds)."""
    from repro.core import SESTrainer, fast_config
    from repro.datasets import load_dataset
    from repro.graph import classification_split
    from repro.resilience import FaultPlan

    graph = classification_split(
        load_dataset(DATASET, scale=SCALE, seed=SEED), seed=SEED
    )
    config = fast_config(
        "gcn",
        explainable_epochs=EPOCHS[0],
        predictive_epochs=EPOCHS[1],
        seed=SEED,
    )
    plan = FaultPlan.parse(faults) if faults else None
    trainer = SESTrainer(graph, config, faults=plan)
    start = time.time()
    result = trainer.fit(workers=workers)
    return trainer, result, time.time() - start


def main(argv=None) -> int:
    total_epochs = sum(EPOCHS)
    benchmarks = []
    summary = {
        "dataset": DATASET,
        "scale": SCALE,
        "seed": SEED,
        "epochs": list(EPOCHS),
        "kill_spec": KILL_SPEC,
    }
    trajectories = {}
    seconds_by_workers = {}
    for workers in WORKER_COUNTS:
        trainer, result, seconds = train_once(workers)
        seconds_by_workers[workers] = seconds
        trajectories[f"workers{workers}"] = (
            trainer.history.phase1_loss[-1],
            trainer.history.phase2_loss[-1],
        )
        benchmarks.append(
            {
                "name": f"epoch_seconds_workers{workers}",
                "stats": {"mean": seconds / total_epochs},
            }
        )
        summary[f"fit_seconds_workers{workers}"] = round(seconds, 3)
        summary[f"test_accuracy_workers{workers}"] = result.test_accuracy
        print(
            f"workers={workers}: {seconds:.2f}s total "
            f"({seconds / total_epochs:.3f}s/epoch) "
            f"test_acc={result.test_accuracy:.4f}"
        )

    trainer, result, kill_seconds = train_once(2, faults=KILL_SPEC)
    trajectories["workers2_kill"] = (
        trainer.history.phase1_loss[-1],
        trainer.history.phase2_loss[-1],
    )
    # Measured inside the supervisor: detect -> replacement dispatched.
    # (Total-runtime differences are noise-dominated at this graph size.)
    recovery = trainer._parallel.recovery_seconds
    benchmarks.append(
        {"name": "recovery_seconds_after_kill", "stats": {"mean": recovery}}
    )
    summary["fit_seconds_workers2_kill"] = round(kill_seconds, 3)
    summary["recovery_seconds"] = round(recovery, 3)
    summary["restarts_during_kill_run"] = trainer._parallel.total_restarts
    print(
        f"workers=2 + {KILL_SPEC}: {kill_seconds:.2f}s "
        f"(recovery overhead ~{recovery:.2f}s, "
        f"{trainer._parallel.total_restarts} restart(s))"
    )

    if len(set(trajectories.values())) != 1:
        print(f"FAIL: trajectories diverged across runs: {trajectories}")
        return 1
    if summary["restarts_during_kill_run"] != 1:
        print("FAIL: kill run did not record exactly one worker restart")
        return 1
    summary["bit_identical_across_runs"] = True
    summary["note"] = (
        "At committed dataset sizes per-shard compute is small, so process "
        "spawn and gradient IPC dominate and workers>1 adds wall-clock; the "
        "bench exists to track that overhead and the recovery cost, and to "
        "prove the trajectory never moves."
    )

    os.makedirs(os.path.dirname(BENCH_JSON), exist_ok=True)
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(
            {"suite": "bench_parallel", "benchmarks": benchmarks, "summary": summary},
            handle,
            indent=2,
        )
    print(f"wrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
