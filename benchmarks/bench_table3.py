"""Benchmark: regenerate paper Table 3 (see repro.experiments.table3)."""

from repro.experiments import table3

from conftest import run_once


def test_table3(benchmark, profile):
    result = run_once(benchmark, lambda: table3.run(profile))
    assert result.rows
