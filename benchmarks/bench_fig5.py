"""Benchmark: regenerate paper Figure 5 (see repro.experiments.fig5)."""

from repro.experiments import fig5

from conftest import run_once


def test_fig5(benchmark, profile):
    result = run_once(benchmark, lambda: fig5.run(profile))
    assert result.rows
