"""Benchmark: regenerate paper Table 8 (see repro.experiments.table8)."""

from repro.experiments import table8

from conftest import run_once


def test_table8(benchmark, profile):
    result = run_once(benchmark, lambda: table8.run(profile))
    assert result.rows
