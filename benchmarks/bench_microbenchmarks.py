"""Micro-benchmarks of the substrate the SES stack runs on.

These are genuine pytest-benchmark measurements (multiple rounds) of the
hot inner loops: the autograd forward/backward of a GCN layer, the
mask-generator pass, k-hop expansion, and negative sampling.  They guard
against performance regressions in the from-scratch engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MaskGenerator
from repro.datasets import cora_like
from repro.graph import classification_split, khop_edge_index, sample_negative_sets
from repro.nn import GCNConv, GATConv
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def medium_graph():
    graph = cora_like(num_nodes=400, seed=0)
    classification_split(graph, seed=0)
    return graph


def test_gcn_forward_backward(benchmark, medium_graph):
    graph = medium_graph
    conv = GCNConv(graph.num_features, 64, rng=np.random.default_rng(0))
    x = Tensor(graph.features)
    edge_index = graph.edge_index()

    def step():
        out = conv(x, edge_index, graph.num_nodes)
        out.sum().backward()
        conv.zero_grad()

    benchmark(step)


def test_gat_forward_backward(benchmark, medium_graph):
    graph = medium_graph
    conv = GATConv(graph.num_features, 64, heads=2, rng=np.random.default_rng(0))
    x = Tensor(graph.features)
    edge_index = graph.edge_index()

    def step():
        out = conv(x, edge_index, graph.num_nodes)
        out.sum().backward()
        conv.zero_grad()

    benchmark(step)


def test_masked_gcn_forward_backward(benchmark, medium_graph):
    graph = medium_graph
    conv = GCNConv(graph.num_features, 64, rng=np.random.default_rng(0))
    x = Tensor(graph.features)
    edge_index = graph.edge_index()
    weights = np.random.default_rng(0).random(edge_index.shape[1])

    def step():
        w = Tensor(weights, requires_grad=True)
        out = conv(x, edge_index, graph.num_nodes, edge_weight=w)
        out.sum().backward()
        conv.zero_grad()

    benchmark(step)


def test_mask_generator_pass(benchmark, medium_graph):
    graph = medium_graph
    khop = khop_edge_index(graph, 2)
    generator = MaskGenerator(64, graph.num_features, rng=np.random.default_rng(0))
    hidden = Tensor(np.random.default_rng(1).normal(size=(graph.num_nodes, 64)))
    negatives = khop[:, :: max(1, khop.shape[1] // 500)]

    def step():
        generator(hidden, khop, negatives)

    benchmark(step)


def test_khop_expansion(benchmark, medium_graph):
    graph = medium_graph

    def step():
        graph._cache.pop(("khop", 2), None)
        graph._cache.pop(("khop_edge_index", 2), None)
        khop_edge_index(graph, 2)

    benchmark(step)


def test_negative_sampling(benchmark, medium_graph):
    graph = medium_graph
    rng = np.random.default_rng(0)

    def step():
        sample_negative_sets(graph, 2, rng, max_per_node=32)

    benchmark(step)
