"""Micro-benchmarks of the substrate the SES stack runs on.

These are genuine pytest-benchmark measurements (multiple rounds) of the
hot inner loops: the autograd forward/backward of a GCN layer, the
mask-generator pass, k-hop expansion, and negative sampling.  They guard
against performance regressions in the from-scratch engine.

With ``REPRO_TELEMETRY=1`` every benchmark also appends a ``metric``
event (mean/stddev/rounds) to a ``results/runs/bench-micro-*.jsonl``
record — the same schema the training recorder emits (see
docs/OBSERVABILITY.md) — and the module additionally writes
``results/BENCH_obs.json`` (name + stats per benchmark), the artefact
``python -m repro obs-diff`` consumes to gate bench regressions.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core import MaskGenerator, SESTrainer, fast_config
from repro.datasets import cora_like
from repro.graph import classification_split, khop_edge_index, sample_negative_sets
from repro.nn import GCNConv, GATConv
from repro.obs import NullRecorder, RunRecorder
from repro.tensor import Tensor

BENCH_JSON = os.path.join("results", "BENCH_obs.json")

_RECORDER = None
_BENCH_STATS = []


def _recorder():
    global _RECORDER
    if _RECORDER is None:
        if os.environ.get("REPRO_TELEMETRY", "").lower() in ("", "0", "false", "no"):
            _RECORDER = NullRecorder()
        else:
            stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
            _RECORDER = RunRecorder(run_id=f"bench-micro-{stamp}")
            _RECORDER.run_start(suite="bench_microbenchmarks")
    return _RECORDER


def _emit(benchmark, name):
    """Append one ``metric`` event per benchmark to the shared run record."""
    recorder = _recorder()
    if recorder.enabled and benchmark.stats is not None:
        stats = benchmark.stats.stats
        recorder.metric(
            name,
            stats.mean,
            stddev=stats.stddev,
            rounds=stats.rounds,
            min=stats.min,
            max=stats.max,
        )
        _BENCH_STATS.append({
            "name": name,
            "stats": {
                "mean": stats.mean,
                "stddev": stats.stddev,
                "rounds": stats.rounds,
                "min": stats.min,
                "max": stats.max,
            },
        })


@pytest.fixture(scope="module", autouse=True)
def _finalize_telemetry():
    """Close the shared recorder (atomic .jsonl finalize) and write the
    obs-diff bench artefact once the module's benchmarks are done."""
    yield
    global _RECORDER
    if _RECORDER is not None and _RECORDER.enabled:
        _RECORDER.close()
        os.makedirs(os.path.dirname(BENCH_JSON), exist_ok=True)
        with open(BENCH_JSON, "w", encoding="utf-8") as handle:
            json.dump(
                {"suite": "bench_microbenchmarks", "benchmarks": _BENCH_STATS},
                handle,
                indent=2,
            )
    _RECORDER = None
    _BENCH_STATS.clear()


@pytest.fixture(scope="module")
def medium_graph():
    graph = cora_like(num_nodes=400, seed=0)
    classification_split(graph, seed=0)
    return graph


def test_gcn_forward_backward(benchmark, medium_graph):
    graph = medium_graph
    conv = GCNConv(graph.num_features, 64, rng=np.random.default_rng(0))
    x = Tensor(graph.features)
    edge_index = graph.edge_index()

    def step():
        out = conv(x, edge_index, graph.num_nodes)
        out.sum().backward()
        conv.zero_grad()

    benchmark(step)
    _emit(benchmark, "gcn_forward_backward")


def test_gat_forward_backward(benchmark, medium_graph):
    graph = medium_graph
    conv = GATConv(graph.num_features, 64, heads=2, rng=np.random.default_rng(0))
    x = Tensor(graph.features)
    edge_index = graph.edge_index()

    def step():
        out = conv(x, edge_index, graph.num_nodes)
        out.sum().backward()
        conv.zero_grad()

    benchmark(step)
    _emit(benchmark, "gat_forward_backward")


def test_masked_gcn_forward_backward(benchmark, medium_graph):
    graph = medium_graph
    conv = GCNConv(graph.num_features, 64, rng=np.random.default_rng(0))
    x = Tensor(graph.features)
    edge_index = graph.edge_index()
    weights = np.random.default_rng(0).random(edge_index.shape[1])

    def step():
        w = Tensor(weights, requires_grad=True)
        out = conv(x, edge_index, graph.num_nodes, edge_weight=w)
        out.sum().backward()
        conv.zero_grad()

    benchmark(step)
    _emit(benchmark, "masked_gcn_forward_backward")


def test_mask_generator_pass(benchmark, medium_graph):
    graph = medium_graph
    khop = khop_edge_index(graph, 2)
    generator = MaskGenerator(64, graph.num_features, rng=np.random.default_rng(0))
    hidden = Tensor(np.random.default_rng(1).normal(size=(graph.num_nodes, 64)))
    negatives = khop[:, :: max(1, khop.shape[1] // 500)]

    def step():
        generator(hidden, khop, negatives)

    benchmark(step)
    _emit(benchmark, "mask_generator_pass")


def test_khop_expansion(benchmark, medium_graph):
    graph = medium_graph

    def step():
        graph._cache.pop(("khop", 2), None)
        graph._cache.pop(("khop_edge_index", 2), None)
        khop_edge_index(graph, 2)

    benchmark(step)
    _emit(benchmark, "khop_expansion")


def test_negative_sampling(benchmark, medium_graph):
    graph = medium_graph
    rng = np.random.default_rng(0)

    def step():
        sample_negative_sets(graph, 2, rng, max_per_node=32)

    benchmark(step)
    _emit(benchmark, "negative_sampling")


def test_ses_fit_quickstart_path(benchmark, medium_graph):
    """End-to-end trainer wall-clock on the examples/quickstart.py code path.

    Runs SESTrainer.fit() with telemetry and profiler disabled (the
    default), guarding the acceptance bound that the observability layer
    adds no overhead when off.
    """
    graph = medium_graph
    config = fast_config(explainable_epochs=10, predictive_epochs=3)

    def step():
        return SESTrainer(graph, config).fit()

    benchmark.pedantic(step, rounds=1, iterations=1, warmup_rounds=0)
    _emit(benchmark, "ses_fit_quickstart_path")
