"""Benchmark: regenerate paper Table 10 (see repro.experiments.table10)."""

from repro.experiments import table10

from conftest import run_once


def test_table10(benchmark, profile):
    result = run_once(benchmark, lambda: table10.run(profile))
    assert result.rows
