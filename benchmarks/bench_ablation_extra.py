"""Ablation benchmarks beyond the paper's Table 10.

DESIGN.md §5 calls out four reproduction-specific design choices; each gets
an accuracy sweep here so their effect is measurable rather than asserted:

* ``mask_floor``      — soft vs hard application of the structure mask.
* ``sample_ratio``    — the ``r`` of Algorithm 1.
* ``k_hops``          — neighbourhood radius of ``A^(k)``.
* ``triplet_pooling`` — mean vs sum pooling of Eq. 11.
* ``subgraph_target`` — label-agreement vs pure-structure Eq. 7 targets.
"""

from __future__ import annotations

from repro.experiments.common import TableResult, prepare_real_world, run_ses

from conftest import run_once

DATASET = "citeseer"


def _sweep(profile, field, values):
    graph = prepare_real_world(DATASET, profile, seed=0)
    rows = []
    for value in values:
        result = run_ses(graph, profile, backbone="gcn", seed=0, **{field: value})
        rows.append([f"{field}={value}", f"{result.test_accuracy * 100:.2f}"])
    return TableResult(
        title=f"Ablation: {field} on {DATASET} ({profile.name})",
        headers=["Variant", "Accuracy %"],
        rows=rows,
    )


def test_mask_floor(benchmark, profile):
    result = run_once(benchmark, lambda: _sweep(profile, "mask_floor", (0.0, 0.5, 0.9)))
    assert len(result.rows) == 3


def test_sample_ratio(benchmark, profile):
    result = run_once(benchmark, lambda: _sweep(profile, "sample_ratio", (0.4, 0.8, 1.0)))
    assert len(result.rows) == 3


def test_k_hops(benchmark, profile):
    result = run_once(benchmark, lambda: _sweep(profile, "k_hops", (1, 2)))
    assert len(result.rows) == 2


def test_triplet_pooling(benchmark, profile):
    result = run_once(benchmark, lambda: _sweep(profile, "triplet_pooling", ("mean", "sum")))
    assert len(result.rows) == 2


def test_subgraph_target(benchmark, profile):
    result = run_once(
        benchmark, lambda: _sweep(profile, "subgraph_target", ("label", "structure"))
    )
    assert len(result.rows) == 2
