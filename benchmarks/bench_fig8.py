"""Benchmark: regenerate paper Figure 8 (see repro.experiments.fig8)."""

from repro.experiments import fig8

from conftest import run_once


def test_fig8(benchmark, profile):
    result = run_once(benchmark, lambda: fig8.run(profile))
    assert result.rows
