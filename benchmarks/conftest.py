"""Benchmark configuration.

Each ``bench_*.py`` regenerates one paper table/figure through its
:mod:`repro.experiments` harness and reports the wall-clock through
pytest-benchmark.  Profiles come from ``REPRO_PROFILE`` (default ``quick``
so the whole suite finishes in minutes; use ``standard``/``full`` to
regenerate the EXPERIMENTS.md numbers).

Every benchmark prints the reproduced table so ``pytest benchmarks/
--benchmark-only -s`` doubles as the results generator.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_profile


@pytest.fixture(scope="session")
def profile():
    return get_profile()


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark timer and print it."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(result)
    return result
