"""Benchmark: regenerate paper Table 9 (see repro.experiments.table9)."""

from repro.experiments import table9

from conftest import run_once


def test_table9(benchmark, profile):
    result = run_once(benchmark, lambda: table9.run(profile))
    assert result.rows
