"""Benchmark: regenerate paper Table 5 (see repro.experiments.table5)."""

from repro.experiments import table5

from conftest import run_once


def test_table5(benchmark, profile):
    result = run_once(benchmark, lambda: table5.run(profile))
    assert result.rows
