"""Benchmark: regenerate paper Figure 4 (see repro.experiments.fig4)."""

from repro.experiments import fig4

from conftest import run_once


def test_fig4(benchmark, profile):
    result = run_once(benchmark, lambda: fig4.run(profile))
    assert result.rows
