"""Benchmark: regenerate paper Table 7 (see repro.experiments.table7)."""

from repro.experiments import table7

from conftest import run_once


def test_table7(benchmark, profile):
    result = run_once(benchmark, lambda: table7.run(profile))
    assert result.rows
