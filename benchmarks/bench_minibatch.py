"""Peak-memory benchmark: full-batch vs neighbor-sampled minibatch training.

Trains SES on the largest committed dataset (Cora at ``scale=1.0``) twice —
full-batch and with ``batch_size=128`` anchor minibatches — under an
:class:`~repro.obs.OpProfiler`, whose :class:`~repro.tensor.alloc.
AllocationTracker` accounts every graph-tensor allocation.  The epoch budgets
are tuned so both modes land on the *same* final test accuracy (the
minibatch path takes ``num_batches`` optimizer steps per epoch, so it needs
far fewer epochs); the headline number is the peak of live graph-tensor
bytes, which the per-batch subgraphs cut by ~40% at matched accuracy.

Writes ``results/BENCH_minibatch.json`` in the ``{benchmarks: [{name,
stats}]}`` shape ``python -m repro obs-diff`` consumes.  Only the byte
counters go into the ``benchmarks`` list (obs-diff treats bench means as
lower-is-better); the accuracies land in the ``summary`` block.

Run with::

    PYTHONPATH=src python benchmarks/bench_minibatch.py
"""

from __future__ import annotations

import json
import os
import sys
import time

BENCH_JSON = os.path.join("results", "BENCH_minibatch.json")

DATASET = "cora"
SCALE = 1.0
SEED = 0
BATCH_SIZE = 128
# Tuned for equal final test accuracy (the acceptance bar is +/-0.5pt): one
# minibatch epoch performs ceil(N / BATCH_SIZE) optimizer steps, so the
# full-batch run needs ~10x the epochs to reach the same operating point.
FULL_BATCH_EPOCHS = (60, 8)
MINIBATCH_EPOCHS = (6, 2)


def train_once(batch_size, epochs):
    """One profiled SES fit; returns (result, alloc summary, seconds)."""
    from repro.core import SESTrainer, fast_config
    from repro.datasets import load_dataset
    from repro.graph import classification_split
    from repro.obs import OpProfiler
    from repro.tensor import clear_layout_cache

    explainable, predictive = epochs
    graph = classification_split(
        load_dataset(DATASET, scale=SCALE, seed=SEED), seed=SEED
    )
    config = fast_config(
        "gcn",
        explainable_epochs=explainable,
        predictive_epochs=predictive,
        seed=SEED,
    )
    trainer = SESTrainer(graph, config)
    clear_layout_cache()  # the memoised layouts of the previous run are not
    # this run's working set; a warm cache would blur the comparison.
    start = time.time()
    with OpProfiler() as profiler:
        result = trainer.fit(batch_size=batch_size)
    return result, profiler.alloc.summary(), time.time() - start


def main(argv=None) -> int:
    modes = [
        ("full_batch", None, FULL_BATCH_EPOCHS),
        (f"minibatch_b{BATCH_SIZE}", BATCH_SIZE, MINIBATCH_EPOCHS),
    ]
    benchmarks = []
    summary = {
        "dataset": DATASET,
        "scale": SCALE,
        "seed": SEED,
        "batch_size": BATCH_SIZE,
    }
    peaks = {}
    for label, batch_size, epochs in modes:
        result, alloc, seconds = train_once(batch_size, epochs)
        peaks[label] = alloc["peak_live_bytes"]
        for counter in ("peak_live_bytes", "bytes_allocated"):
            benchmarks.append(
                {"name": f"{counter}_{label}", "stats": {"mean": float(alloc[counter])}}
            )
        summary[f"test_accuracy_{label}"] = result.test_accuracy
        summary[f"epochs_{label}"] = list(epochs)
        summary[f"seconds_{label}"] = round(seconds, 2)
        print(
            f"{label:>16}: test_acc={result.test_accuracy:.4f} "
            f"peak_live={alloc['peak_live_bytes'] / 1e6:.1f}MB "
            f"allocated={alloc['bytes_allocated'] / 1e6:.1f}MB "
            f"({seconds:.1f}s)"
        )

    full = peaks["full_batch"]
    mini = peaks[f"minibatch_b{BATCH_SIZE}"]
    summary["peak_reduction"] = round(1.0 - mini / full, 4)
    gap = abs(
        summary["test_accuracy_full_batch"]
        - summary[f"test_accuracy_minibatch_b{BATCH_SIZE}"]
    )
    summary["accuracy_gap_pt"] = round(100.0 * gap, 2)
    print(
        f"peak-memory reduction: {100.0 * summary['peak_reduction']:.1f}% "
        f"(accuracy gap {summary['accuracy_gap_pt']:.2f}pt)"
    )

    os.makedirs(os.path.dirname(BENCH_JSON), exist_ok=True)
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(
            {"suite": "bench_minibatch", "benchmarks": benchmarks, "summary": summary},
            handle,
            indent=2,
        )
    print(f"wrote {BENCH_JSON}")
    if mini >= full:
        print("FAIL: minibatch peak memory did not drop below full-batch")
        return 1
    if gap > 0.005:
        print("FAIL: accuracy gap exceeds 0.5pt")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
