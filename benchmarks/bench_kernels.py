"""CSR segment-kernel microbenchmarks: sorted-layout kernels vs naive.

Measures the scatter primitives on both implementations — the CSR segment
kernels that the conv layers thread cached layouts into, and the
``naive=True`` dense-scatter reference — at Cora scale and on a denser
synthetic graph.  On module teardown the collected stats are written to
``results/BENCH_kernels.json`` in the ``{benchmarks: [{name, stats}]}``
shape ``python -m repro obs-diff`` consumes, together with a ``speedups``
summary (csr-vs-naive mean ratio per op/graph pair).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.datasets import cora_like
from repro.tensor import CSRSegmentLayout, Tensor, gather_rows, segment_softmax, segment_sum

BENCH_JSON = os.path.join("results", "BENCH_kernels.json")
HIDDEN = 32
HEADS = 4

_BENCH_STATS = []


def _emit(benchmark, name):
    if benchmark.stats is None:
        return
    stats = benchmark.stats.stats
    _BENCH_STATS.append(
        {
            "name": name,
            "stats": {
                "mean": stats.mean,
                "stddev": stats.stddev,
                "rounds": stats.rounds,
                "min": stats.min,
                "max": stats.max,
            },
        }
    )


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    means = {b["name"]: b["stats"]["mean"] for b in _BENCH_STATS}
    speedups = {}
    for name, mean in means.items():
        if name.endswith("_naive"):
            csr_name = name[: -len("_naive")] + "_csr"
            if csr_name in means and means[csr_name] > 0:
                speedups[csr_name[: -len("_csr")]] = mean / means[csr_name]
    os.makedirs(os.path.dirname(BENCH_JSON), exist_ok=True)
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "suite": "bench_kernels",
                "benchmarks": _BENCH_STATS,
                "speedups": speedups,
            },
            handle,
            indent=2,
        )
    _BENCH_STATS.clear()


class Problem:
    """One graph's edge list plus prebuilt layouts and edge/node values."""

    def __init__(self, edge_index: np.ndarray, num_nodes: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.num_nodes = num_nodes
        self.src = edge_index[0]
        self.dst = edge_index[1]
        self.src_layout = CSRSegmentLayout(self.src, num_nodes)
        self.dst_layout = CSRSegmentLayout(self.dst, num_nodes)
        num_edges = edge_index.shape[1]
        self.edge_values = rng.normal(size=(num_edges, HIDDEN))
        self.edge_scores = rng.normal(size=(num_edges, HEADS))
        self.node_values = rng.normal(size=(num_nodes, HIDDEN))


@pytest.fixture(scope="module")
def cora_small() -> Problem:
    graph = cora_like(num_nodes=2708, seed=0)
    return Problem(graph.edge_index(), graph.num_nodes)


@pytest.fixture(scope="module")
def synthetic() -> Problem:
    rng = np.random.default_rng(7)
    num_nodes, num_edges = 1000, 20000
    edge_index = rng.integers(0, num_nodes, size=(2, num_edges)).astype(np.int64)
    return Problem(edge_index, num_nodes)


def _problem(request, name) -> Problem:
    return request.getfixturevalue(name)


@pytest.mark.parametrize("graph_name", ["cora_small", "synthetic"])
@pytest.mark.parametrize("path", ["csr", "naive"])
def test_segment_sum_forward(benchmark, request, graph_name, path):
    problem = _problem(request, graph_name)
    values = Tensor(problem.edge_values)
    kwargs = (
        {"layout": problem.dst_layout} if path == "csr" else {"naive": True}
    )

    def step():
        segment_sum(values, problem.dst, problem.num_nodes, **kwargs)

    benchmark(step)
    _emit(benchmark, f"segment_sum_{graph_name}_{path}")


@pytest.mark.parametrize("graph_name", ["cora_small", "synthetic"])
@pytest.mark.parametrize("path", ["csr", "naive"])
def test_segment_softmax_forward(benchmark, request, graph_name, path):
    problem = _problem(request, graph_name)
    scores = Tensor(problem.edge_scores)
    kwargs = (
        {"layout": problem.dst_layout} if path == "csr" else {"naive": True}
    )

    def step():
        segment_softmax(scores, problem.dst, problem.num_nodes, **kwargs)

    benchmark(step)
    _emit(benchmark, f"segment_softmax_{graph_name}_{path}")


@pytest.mark.parametrize("graph_name", ["cora_small", "synthetic"])
@pytest.mark.parametrize("path", ["csr", "naive"])
def test_gather_segment_sum_forward_backward(benchmark, request, graph_name, path):
    """The message-passing round trip: gather by src, reduce by dst, adjoint."""
    problem = _problem(request, graph_name)
    if path == "csr":
        gather_kwargs = {"layout": problem.src_layout}
        segment_kwargs = {"layout": problem.dst_layout}
    else:
        gather_kwargs = {"naive": True}
        segment_kwargs = {"naive": True}

    def step():
        x = Tensor(problem.node_values, requires_grad=True)
        messages = gather_rows(x, problem.src, **gather_kwargs)
        out = segment_sum(messages, problem.dst, problem.num_nodes, **segment_kwargs)
        out.sum().backward()

    benchmark(step)
    _emit(benchmark, f"gather_segment_sum_fwdbwd_{graph_name}_{path}")
