"""Benchmark: regenerate paper Table 6 (see repro.experiments.table6)."""

from repro.experiments import table6

from conftest import run_once


def test_table6(benchmark, profile):
    result = run_once(benchmark, lambda: table6.run(profile))
    assert result.rows
