"""Benchmark: regenerate paper Figure 7 (see repro.experiments.fig7)."""

from repro.experiments import fig7

from conftest import run_once


def test_fig7(benchmark, profile):
    result = run_once(benchmark, lambda: fig7.run(profile))
    assert result.rows
