"""CLI front-end for the paper-reproduction experiment harnesses.

Examples::

    python examples/run_experiments.py table8
    python examples/run_experiments.py table3 --profile standard
    python examples/run_experiments.py all --profile quick

Profiles: quick (seconds-to-minutes), standard (EXPERIMENTS.md numbers),
full (paper-scale epochs).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS, get_profile


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="which paper table/figure to regenerate",
    )
    parser.add_argument(
        "--profile",
        default=None,
        choices=["quick", "standard", "full"],
        help="scale profile (default: REPRO_PROFILE env or 'quick')",
    )
    args = parser.parse_args(argv)
    profile = get_profile(args.profile)

    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        result = ALL_EXPERIMENTS[name](profile)
        print(result)
        print(f"[{name} regenerated in {time.time() - start:.0f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
