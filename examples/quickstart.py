"""Quickstart: train SES on a citation network and read its explanations.

Runs in under a minute on a laptop CPU.  The pipeline:

1. load a Cora-like citation graph (offline statistical surrogate),
2. split it 60/20/20 as in the paper,
3. run both SES phases (explainable training + enhanced predictive learning),
4. print the test accuracy, and
5. inspect the built-in explanations — no post-hoc explainer needed.

Usage: python examples/quickstart.py [--telemetry] [--op-profile]

``--telemetry`` writes a structured run record to
``results/runs/quickstart.jsonl``; ``--op-profile`` additionally runs the
op-level autograd profiler and appends its per-op stats to the record.
Render either with ``python -m repro obs-report results/runs/quickstart.jsonl``
(docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import contextlib

from repro.core import SESConfig, SESTrainer
from repro.datasets import load_dataset
from repro.graph import classification_split
from repro.obs import NullRecorder, OpProfiler, RunRecorder


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--telemetry", action="store_true",
                        help="write results/runs/quickstart.jsonl")
    parser.add_argument("--op-profile", action="store_true",
                        help="profile autograd ops (implies --telemetry)")
    args = parser.parse_args(argv)

    graph = load_dataset("cora", seed=0, scale=0.5)
    classification_split(graph, seed=0)
    print(graph.summary())

    config = SESConfig(
        backbone="gcn",
        hidden_features=64,
        explainable_epochs=120,
        predictive_epochs=20,
        dropout=0.3,
        seed=0,
    )
    recorder = (
        RunRecorder(run_id="quickstart")
        if args.telemetry or args.op_profile
        else NullRecorder()
    )
    trainer = SESTrainer(graph, config, recorder=recorder)
    profiler = OpProfiler() if args.op_profile else contextlib.nullcontext()
    with profiler:
        result = trainer.fit()
    if args.op_profile:
        recorder.record_profile(profiler)
        print()
        print(profiler.table())

    print(f"\ntest accuracy: {result.test_accuracy:.3f}")
    print(f"validation accuracy: {result.val_accuracy:.3f}")
    print(f"explainable training: {result.timings['explainable']:.1f}s, "
          f"predictive learning: {result.timings['predictive']:.1f}s")

    # --- built-in explanations -----------------------------------------
    explanations = result.explanations
    probe = int(graph.degrees().argmax())  # the busiest node
    print(f"\nexplaining node {probe} (class {graph.labels[probe]}, "
          f"degree {int(graph.degrees()[probe])})")

    print("  most important neighbours (structure mask M̂_s):")
    for neighbor, weight in explanations.ranked_neighbors(probe)[:5]:
        marker = "same class" if graph.labels[neighbor] == graph.labels[probe] else "other class"
        print(f"    node {neighbor:4d}  weight {weight:.3f}  ({marker})")

    print("  most important feature dimensions (feature mask M_f ⊙ X):")
    for feature in explanations.top_features(probe, k=5):
        print(f"    feature {feature:4d}  weight {explanations.feature_explanation[probe, feature]:.3f}")

    if recorder.enabled:
        recorder.close()
        print(f"\nrun record written to {recorder.path}  "
              f"(render: python -m repro obs-report {recorder.path})")


if __name__ == "__main__":
    main()
