"""Graph classification with built-in explanations (SES-G extension).

The paper studies node classification; its recipe extends naturally to
whole-graph labels — the direction its conclusion hints at.  This example:

1. generates a motif-presence benchmark (does the graph contain a house?),
2. trains the self-explained graph classifier (one encoder over the
   disjoint-union batch, sum pooling, edge-sensitivity accumulation), and
3. prints, for a positive test graph, the edges the model says made it
   positive — checked against the planted motif.

Usage: python examples/graph_classification.py
"""

from __future__ import annotations

import numpy as np

from repro.graphlevel import GraphSES, motif_presence_dataset


def main() -> None:
    batch = motif_presence_dataset(num_graphs=60, base_nodes=14, motif="house", seed=0)
    print(f"{batch.num_graphs} graphs, {batch.num_nodes} total nodes, "
          f"{batch.edge_index.shape[1]} directed edges")

    ses = GraphSES(batch, hidden=32, seed=0)
    result = ses.fit(epochs=120)
    print(f"train accuracy: {result.train_accuracy:.3f}")
    print(f"test accuracy : {result.test_accuracy:.3f}")

    ground_truth = batch.extra["gt_edges"]
    positive_test = [g for g in ses.test_graphs if int(g) in ground_truth]
    if not positive_test:
        positive_test = list(ground_truth)
    case = int(positive_test[0])
    truth = ground_truth[case]
    print(f"\nwhy is graph {case} positive? top edges by built-in sensitivity")
    print("('*' marks a true planted-motif edge):")
    for (u, v), score in result.explanations[case][:8]:
        marker = "*" if (u, v) in truth else " "
        print(f"  {u:4d} -> {v:4d}  {score:.3e} {marker}")

    precisions = []
    for graph_index, edges in ground_truth.items():
        top = [edge for edge, _ in result.explanations[graph_index][:6]]
        precisions.append(np.mean([edge in edges for edge in top]))
    print(f"\nmean motif precision@6 over positive graphs: "
          f"{np.mean(precisions) * 100:.1f}%")


if __name__ == "__main__":
    main()
