"""Motif discovery: does the explainer find the planted "house" structures?

This is the paper's synthetic-benchmark scenario (Table 4 / Fig. 6): a
Barabási–Albert graph with attached house motifs, where the ground-truth
explanation for a motif node is exactly the motif's edges.  We train SES
and a GCN + GNNExplainer pipeline and compare:

* explanation AUC against the ground-truth motif edges,
* the time each method needs, and
* a concrete case — the ranked edges around one motif node.

Usage: python examples/motif_explanation.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import SESConfig, SESTrainer
from repro.datasets import load_dataset
from repro.explainers import GNNExplainer, evaluate_edge_auc, sample_motif_nodes
from repro.graph import explanation_split
from repro.models import train_node_classifier


def main() -> None:
    graph = load_dataset("ba_shapes", seed=0, scale=0.5)
    explanation_split(graph, seed=0)
    print(graph.summary())
    motif_nodes = graph.extra["motif_nodes"]
    rng = np.random.default_rng(0)
    eval_nodes = sample_motif_nodes(graph, 16, rng)

    # --- SES: explanations fall out of training -------------------------
    start = time.perf_counter()
    # Structural-role settings (see DESIGN.md §5): structure targets for the
    # subgraph loss and the masked-loss sensitivity readout for E_sub.
    config = SESConfig(
        backbone="gcn", hidden_features=48, explainable_epochs=200,
        predictive_epochs=10, dropout=0.1, learning_rate=0.01,
        subgraph_target="structure", structure_explanation="sensitivity",
        seed=0,
    )
    trainer = SESTrainer(graph, config)
    trainer.train_explainable()
    ses_scores = trainer.explanations().edge_scores()
    ses_time = time.perf_counter() - start
    ses_auc = evaluate_edge_auc(ses_scores, graph, eval_nodes)

    # --- post-hoc: train GCN, then optimise per-node masks --------------
    start = time.perf_counter()
    classifier = train_node_classifier(graph, "gcn", hidden=48, epochs=150,
                                       dropout=0.1, seed=0)
    explainer = GNNExplainer(classifier.model, graph, epochs=100, seed=0)
    gex_scores = explainer.edge_scores(eval_nodes)
    gex_time = time.perf_counter() - start
    gex_auc = evaluate_edge_auc(gex_scores, graph, eval_nodes)

    print(f"\nSES          : AUC {ses_auc * 100:5.1f}%  "
          f"({ses_time:.1f}s, explains every node)")
    print(f"GNNExplainer : AUC {gex_auc * 100:5.1f}%  "
          f"({gex_time:.1f}s for {len(eval_nodes)} nodes)")

    # --- case study ------------------------------------------------------
    case = int(eval_nodes[0])
    gt = graph.extra["gt_edge_mask"]
    print(f"\ntop-ranked edges around motif node {case} ('*' = true motif edge):")
    for name, scores in (("SES", ses_scores), ("GNNExplainer", gex_scores)):
        incident = sorted(
            ((score, edge) for edge, score in scores.items()
             if case in edge),
            reverse=True,
        )[:6]
        rendering = "  ".join(
            f"{u}->{v}{'*' if (u, v) in gt else ''}({score:.2f})"
            for score, (u, v) in incident
        )
        print(f"  {name:>12}: {rendering}")


if __name__ == "__main__":
    main()
