"""Feature audit: which input features does the model actually rely on?

The paper's Table 5 scenario — a practitioner wants to know whether the
classifier keys on meaningful signals.  We train SES on a citation
surrogate whose generative process we control (each class has known
"topic word" columns), then check:

1. does the learned feature mask M_f concentrate on each class's true
   topic words? (precision of the top-ranked mask columns), and
2. Fidelity+: how much accuracy is lost when the top-5 features per node
   (per SES vs per GraphLIME) are removed.

Usage: python examples/feature_audit.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SESConfig, SESTrainer
from repro.datasets import cora_like
from repro.explainers import GraphLIME
from repro.graph import classification_split
from repro.metrics import fidelity_plus
from repro.models import train_node_classifier

WORDS_PER_CLASS = 25


def main() -> None:
    graph = cora_like(num_nodes=500, seed=0)
    classification_split(graph, seed=0)
    print(graph.summary())

    config = SESConfig(
        backbone="gcn", hidden_features=64, explainable_epochs=150,
        predictive_epochs=15, dropout=0.3, seed=0,
    )
    trainer = SESTrainer(graph, config)
    result = trainer.fit()
    print(f"SES test accuracy: {result.test_accuracy:.3f}")

    # --- 1. topic-word recovery -----------------------------------------
    explanations = result.explanations
    print("\ntopic-word recovery per class (top-10 masked features that are")
    print("genuine topic words of the node's class):")
    for cls in range(graph.num_classes):
        members = np.flatnonzero((graph.labels == cls) & graph.test_mask)
        if len(members) == 0:
            continue
        topic_columns = set(range(cls * WORDS_PER_CLASS, (cls + 1) * WORDS_PER_CLASS))
        hits = []
        for node in members[:40]:
            top = np.argsort(-explanations.feature_explanation[node])[:10]
            hits.append(len(topic_columns & set(top.tolist())) / 10)
        print(f"  class {cls}: precision@10 = {np.mean(hits) * 100:5.1f}%")

    # --- 2. Fidelity+ against GraphLIME ----------------------------------
    rng = np.random.default_rng(0)
    test_nodes = np.flatnonzero(graph.test_mask)
    sample = rng.choice(test_nodes, size=min(40, len(test_nodes)), replace=False)
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[sample] = True

    ses_fidelity = fidelity_plus(
        trainer.predict, graph.features, graph.labels,
        explanations.feature_explanation, top_k=5, mask=mask,
    )

    classifier = train_node_classifier(graph, "gcn", hidden=64, epochs=150, seed=0)
    lime = GraphLIME(classifier.model, graph, seed=0)
    lime_importance = lime.feature_importance(sample)
    lime_fidelity = fidelity_plus(
        classifier.predict, graph.features, graph.labels,
        lime_importance, top_k=5, mask=mask,
    )

    print(f"\nFidelity+ (accuracy drop after removing each node's top-5 features):")
    print(f"  SES       : {ses_fidelity * 100:5.1f}%")
    print(f"  GraphLIME : {lime_fidelity * 100:5.1f}%")
    print("higher = the explanation points at features the model truly uses")


if __name__ == "__main__":
    main()
