"""Persistence workflow: train once, ship the model + explanations.

A practitioner trains SES on their graph, saves everything to ``.npz``
archives (no pickle — safe to share), and a second process reloads both
the model (for fresh predictions) and the explanations (for auditing)
without retraining.

Usage: python examples/save_and_reload.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import io
from repro.core import SESConfig, SESTrainer
from repro.datasets import load_dataset
from repro.graph import classification_split
from repro.nn import GraphEncoder


def main() -> None:
    graph = load_dataset("citeseer", seed=0, scale=0.3)
    classification_split(graph, seed=0)
    print(graph.summary())

    config = SESConfig(
        backbone="gcn", hidden_features=32, explainable_epochs=60,
        predictive_epochs=10, dropout=0.3, seed=0,
    )
    trainer = SESTrainer(graph, config)
    result = trainer.fit()
    print(f"trained: test accuracy {result.test_accuracy:.3f}")

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        io.save_graph(graph, base / "graph.npz")
        io.save_checkpoint(trainer.model, base / "ses_model.npz")
        io.save_explanations(result.explanations, base / "explanations.npz")
        sizes = {p.name: p.stat().st_size // 1024 for p in base.iterdir()}
        print(f"saved artifacts (KiB): {sizes}")

        # ---- a fresh process reloads everything -----------------------
        reloaded_graph = io.load_graph(base / "graph.npz")
        fresh = SESTrainer(reloaded_graph, config)  # same architecture
        io.load_checkpoint(fresh.model, base / "ses_model.npz")
        reloaded_explanations = io.load_explanations(base / "explanations.npz")

    # Same parameters → same predictions, no retraining.
    original = result.predictions
    fresh._frozen_feature_mask = result.explanations.feature_mask
    fresh._frozen_structure_values = trainer._frozen_structure_values
    fresh._best_readout = trainer._best_readout
    restored = fresh.predict()
    agreement = float((original == restored).mean())
    print(f"prediction agreement after reload: {agreement * 100:.1f}%")

    probe = int(reloaded_graph.degrees().argmax())
    print(f"reloaded explanation for node {probe}:",
          reloaded_explanations.ranked_neighbors(probe)[:3])


if __name__ == "__main__":
    main()
